// Observability subsystem tests: histogram bucket math, metrics aggregation
// under concurrency, flight-recorder ring/sink semantics, trace determinism
// across serial and parallel execution, and the thread-safe logger sink.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "classic/cubic.h"
#include "harness/parallel.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/sink.h"
#include "util/logging.h"

namespace libra {
namespace {

// --- Histogram bucket math ---------------------------------------------------

TEST(Histogram, BoundaryValueLandsInBucketWithInclusiveUpperBound) {
  Histogram h({1.0, 2.0, 3.0});
  h.add(1.0);  // x <= bound: first bucket
  h.add(2.0);
  h.add(2.5);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_EQ(h.bucket_counts()[1], 1);
  EXPECT_EQ(h.bucket_counts()[2], 1);
  EXPECT_EQ(h.bucket_counts()[3], 0);
}

TEST(Histogram, BelowFirstBoundAndOverflowBothCounted) {
  Histogram h({10.0, 20.0});
  h.add(-5.0);   // below the first bound: first bucket
  h.add(1000.0); // above the last bound: overflow bucket
  EXPECT_EQ(h.bucket_counts()[0], 1);
  EXPECT_EQ(h.bucket_counts()[2], 1);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 1000.0);
}

TEST(Histogram, EmptyAndSingleValuePercentiles) {
  Histogram h = Histogram::linear(0, 100, 10);
  EXPECT_EQ(h.percentile(50), 0.0);  // empty: defined as 0
  h.add(42.0);
  // One sample: every percentile collapses to it (clamped to [min, max]).
  EXPECT_EQ(h.percentile(0), 42.0);
  EXPECT_EQ(h.percentile(50), 42.0);
  EXPECT_EQ(h.percentile(100), 42.0);
}

TEST(Histogram, PercentileInterpolatesAndStaysInObservedRange) {
  Histogram h = Histogram::linear(0, 100, 10);
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.percentile(50), 50.0, 10.0);
  EXPECT_NEAR(h.percentile(90), 90.0, 10.0);
  EXPECT_GE(h.percentile(0), h.min());
  EXPECT_LE(h.percentile(100), h.max());
  // Percentiles are monotone in p.
  EXPECT_LE(h.percentile(50), h.percentile(90));
  EXPECT_LE(h.percentile(90), h.percentile(99));
}

TEST(Histogram, LinearAndExponentialLadders) {
  Histogram lin = Histogram::linear(0, 10, 5);
  ASSERT_EQ(lin.bounds().size(), 5u);
  EXPECT_DOUBLE_EQ(lin.bounds()[0], 2.0);
  EXPECT_DOUBLE_EQ(lin.bounds()[4], 10.0);

  Histogram exp = Histogram::exponential(1.0, 2.0, 4);
  ASSERT_EQ(exp.bounds().size(), 4u);
  EXPECT_DOUBLE_EQ(exp.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(exp.bounds()[3], 8.0);

  EXPECT_THROW(Histogram::linear(5, 5, 4), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{}), std::invalid_argument);
}

TEST(Histogram, UnderflowAndOverflowAreReportedExplicitly) {
  Histogram h = Histogram::linear(10, 20, 5);  // linear declares lo as the edge
  EXPECT_EQ(h.lower_edge(), 10.0);
  h.add(5.0);    // below the declared edge: bucket 0 AND the underflow count
  h.add(15.0);   // in range
  h.add(100.0);  // past the last bound
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.count(), 3);  // every sample still counted in the buckets
  EXPECT_EQ(h.bucket_counts().front(), 1);

  // Explicit-bounds histograms have no declared lower edge: nothing is
  // "below range" by default.
  Histogram open({10.0, 20.0});
  open.add(-1e9);
  EXPECT_EQ(open.underflow(), 0);
  EXPECT_EQ(open.overflow(), 0);

  // Merge adds the flow counters alongside the buckets.
  Histogram h2 = Histogram::linear(10, 20, 5);
  h2.add(1.0);
  h2.add(99.0);
  h.merge(h2);
  EXPECT_EQ(h.underflow(), 2);
  EXPECT_EQ(h.overflow(), 2);
}

TEST(Histogram, ToJsonReportsOverflowAndUnderflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms", Histogram::linear(1, 10, 3));
  h.add(0.5);
  h.add(5.0);
  h.add(50.0);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"overflow\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"underflow\":1"), std::string::npos) << json;
}

TEST(Histogram, MergeAddsBucketwiseAndRejectsMismatchedBounds) {
  Histogram a = Histogram::linear(0, 10, 5);
  Histogram b = Histogram::linear(0, 10, 5);
  a.add(1.0);
  b.add(9.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 13.0);

  Histogram c = Histogram::linear(0, 20, 5);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Gauge, TracksMinMaxLastCount) {
  Gauge g;
  EXPECT_TRUE(g.empty());
  g.set(5.0);
  g.set(-1.0);
  g.set(3.0);
  EXPECT_EQ(g.min(), -1.0);
  EXPECT_EQ(g.max(), 5.0);
  EXPECT_EQ(g.last(), 3.0);
  EXPECT_EQ(g.count(), 3);
}

// --- MetricsRegistry aggregation --------------------------------------------

TEST(MetricsRegistry, ConcurrentMergesAggregateExactly) {
  MetricsRegistry total;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&total, t] {
      for (int i = 0; i < kPerThread; ++i) {
        MetricsRegistry local;
        local.counter("n").inc(3);
        local.gauge("g").set(static_cast<double>(t));
        local.histogram("h", Histogram::linear(0, 8, 8))
            .add(static_cast<double>(t));
        total.merge(local);
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(total.counter("n").value(), 3 * kThreads * kPerThread);
  EXPECT_EQ(total.gauge("g").min(), 0.0);
  EXPECT_EQ(total.gauge("g").max(), kThreads - 1.0);
  Histogram& h = total.histogram("h", Histogram::linear(0, 8, 8));
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ToJsonContainsAllSections) {
  MetricsRegistry reg;
  reg.counter("hits").inc(7);
  reg.gauge("depth").set(2.5);
  reg.histogram("lat", Histogram::linear(0, 10, 2)).add(4.0);
  std::string json = reg.to_json();
  EXPECT_NE(json.find("\"hits\":7"), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// --- FlightRecorder ring / sink semantics ------------------------------------

TEST(FlightRecorder, DisabledRecorderAcceptsNothing) {
  FlightRecorder rec;
  rec.ack(sec(1), 0, 1, msec(30), 1500, 1e6, 3000);
  rec.drop(sec(1), 0, 2, 1500, 0, DropReason::kOverflow);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshot().empty());
}

TEST(FlightRecorder, DisabledRecordPathIsCheap) {
  // Coarse guard against accidental work on the disabled path: tens of
  // millions of calls must stay far under a second (the hot path is a single
  // predictable branch). Bound is very generous to survive sanitizers.
  FlightRecorder rec;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 10'000'000; ++i) {
    rec.ack(sec(1), 0, static_cast<std::uint64_t>(i), msec(30), 1500, 1e6, 0);
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_LT(ms, 2000.0);
}

TEST(FlightRecorder, BlackBoxRingKeepsMostRecentEvents) {
  FlightRecorder rec;
  rec.enable(4);
  for (int i = 0; i < 10; ++i) {
    rec.send(msec(i), 0, static_cast<std::uint64_t>(i), 1500, 0);
  }
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.overwritten(), 6u);
  EXPECT_EQ(rec.buffered(), 4u);
  std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);  // oldest-first, most recent four
  }
}

TEST(FlightRecorder, SinkStreamsFullRingWithoutLoss) {
  auto out = std::make_shared<std::ostringstream>();
  FlightRecorder rec;
  rec.enable(4);  // tiny ring: forces several mid-run flushes
  rec.set_sink(std::make_shared<StreamLineSink>(*out));
  for (int i = 0; i < 10; ++i) {
    rec.send(msec(i), 0, static_cast<std::uint64_t>(i), 1500, 0);
  }
  rec.flush();
  EXPECT_EQ(rec.overwritten(), 0u);
  std::istringstream in(out->str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"ev\":\"send\""), std::string::npos) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 10);
}

TEST(FlightRecorder, JsonlFieldsMatchSchema) {
  FlightRecorder rec;
  rec.enable(16);
  rec.ack(msec(1500), 2, 42, msec(30), 1448, 2.5e6, 4344);
  rec.drop(sec(2), -1, 7, 1500, 30000, DropReason::kCodel);
  std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);

  std::string line;
  FlightRecorder::append_jsonl(events[0], line);
  EXPECT_NE(line.find("\"ev\":\"ack\""), std::string::npos);
  EXPECT_NE(line.find("\"t\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"flow\":2"), std::string::npos);
  EXPECT_NE(line.find("\"seq\":42"), std::string::npos);
  EXPECT_NE(line.find("\"rtt_ms\":30"), std::string::npos);

  line.clear();
  FlightRecorder::append_jsonl(events[1], line);
  EXPECT_NE(line.find("\"ev\":\"drop\""), std::string::npos);
  EXPECT_EQ(line.find("\"flow\""), std::string::npos);  // link-level: no flow key
  EXPECT_NE(line.find("\"reason\":\"codel\""), std::string::npos);
}

TEST(FlightRecorder, CsvSinkWritesHeaderOnce) {
  auto out = std::make_shared<std::ostringstream>();
  FlightRecorder rec;
  rec.enable(2);
  rec.set_sink(std::make_shared<StreamLineSink>(*out), TraceFormat::kCsv);
  for (int i = 0; i < 5; ++i) {
    rec.send(msec(i), 0, static_cast<std::uint64_t>(i), 1500, 0);
  }
  rec.flush();
  std::istringstream in(out->str());
  std::string first;
  ASSERT_TRUE(std::getline(in, first));
  EXPECT_EQ(first, FlightRecorder::csv_header());
  std::string line;
  int header_count = 1, data_lines = 0;
  while (std::getline(in, line)) {
    if (line == FlightRecorder::csv_header()) ++header_count;
    else ++data_lines;
  }
  EXPECT_EQ(header_count, 1);  // header written once, not per flush
  EXPECT_EQ(data_lines, 5);
}

// --- End-to-end: recording a run ---------------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

RunRequest cubic_request(std::uint64_t seed) {
  Scenario s = wired_scenario(24);
  s.duration = sec(3);
  return RunRequest::single(
      s, [] { return std::make_unique<Cubic>(); }, seed);
}

TEST(FlightRecorder, IdenticalSeedsProduceByteIdenticalTraces) {
  // The determinism guarantee extended to traces: serial run_scenario and
  // run_many on a pool must write byte-identical JSONL for the same seed.
  const std::string dir = ::testing::TempDir();
  const std::string serial_path = dir + "obs_serial.jsonl";

  RunRequest req = cubic_request(42);
  ObsOptions obs;
  obs.record = true;
  obs.trace_path = serial_path;
  run_scenario(req.scenario, req.flows, req.seed, obs);
  const std::string serial_trace = read_file(serial_path);
  ASSERT_FALSE(serial_trace.empty());

  std::vector<RunRequest> batch;
  std::vector<std::string> paths;
  for (int i = 0; i < 2; ++i) {
    RunRequest r = cubic_request(42);
    r.obs.record = true;
    r.obs.trace_path = dir + "obs_par" + std::to_string(i) + ".jsonl";
    paths.push_back(r.obs.trace_path);
    batch.push_back(std::move(r));
  }
  ThreadPool pool(2);
  run_many(batch, pool);

  for (const std::string& p : paths) {
    EXPECT_EQ(read_file(p), serial_trace) << p;
  }
}

TEST(FlightRecorder, RecordingDoesNotPerturbTheSimulation) {
  RunRequest req = cubic_request(7);

  auto plain = run_scenario(req.scenario, req.flows, req.seed);
  RunSummary off = summarize(*plain, req.warmup, req.scenario.duration);
  EXPECT_EQ(plain->recorder().recorded(), 0u);

  ObsOptions obs;
  obs.record = true;  // black-box mode: ring only, no sink
  auto recorded = run_scenario(req.scenario, req.flows, req.seed, obs);
  RunSummary on = summarize(*recorded, req.warmup, req.scenario.duration);
  EXPECT_GT(recorded->recorder().recorded(), 0u);

  // Bitwise-identical summaries: observation must not change the experiment.
  EXPECT_EQ(off.link_utilization, on.link_utilization);
  EXPECT_EQ(off.avg_delay_ms, on.avg_delay_ms);
  EXPECT_EQ(off.total_throughput_bps, on.total_throughput_bps);
  ASSERT_EQ(off.flows.size(), on.flows.size());
  for (std::size_t i = 0; i < off.flows.size(); ++i) {
    EXPECT_EQ(off.flows[i].throughput_bps, on.flows[i].throughput_bps);
    EXPECT_EQ(off.flows[i].avg_rtt_ms, on.flows[i].avg_rtt_ms);
    EXPECT_EQ(off.flows[i].loss_rate, on.flows[i].loss_rate);
  }
}

TEST(RunSummaryJson, ContainsAllSummaryFields) {
  RunRequest req = cubic_request(1);
  auto net = run_scenario(req.scenario, req.flows, req.seed);
  RunSummary summary = summarize(*net, req.warmup, req.scenario.duration);
  std::string json = to_json(summary);
  EXPECT_NE(json.find("\"link_utilization\":"), std::string::npos);
  EXPECT_NE(json.find("\"avg_delay_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"total_throughput_bps\":"), std::string::npos);
  EXPECT_NE(json.find("\"flows\":["), std::string::npos);
  EXPECT_NE(json.find("\"throughput_bps\":"), std::string::npos);
  EXPECT_NE(json.find("\"loss_rate\":"), std::string::npos);
}

TEST(NetworkMetrics, FinalizedRegistryDescribesTheRun) {
  RunRequest req = cubic_request(3);
  auto net = run_scenario(req.scenario, req.flows, req.seed);
  net->finalize_metrics();
  const MetricsRegistry& m = net->metrics();
  EXPECT_GT(m.counters().at("sim.events_processed").value(), 0);
  EXPECT_EQ(m.counters().at("flows").value(), 1);
  EXPECT_GT(m.counters().at("flow.packets_sent").value(), 0);
  EXPECT_GT(m.counters().at("flow.packets_acked").value(), 0);
  EXPECT_GT(m.gauges().at("sim.event_queue_max_pending").last(), 0);
  // Calling it again must not double-count (idempotence guard).
  net->finalize_metrics();
  EXPECT_EQ(m.counters().at("flows").value(), 1);
}

// --- Logger thread safety ----------------------------------------------------

class CaptureSink final : public LineSink {
 public:
  void write_line(std::string_view line) override {
    std::lock_guard<std::mutex> lock(mu_);
    lines_.emplace_back(line);
  }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(Logger, ConcurrentWritersNeverInterleaveLines) {
  auto capture = std::make_shared<CaptureSink>();
  Logger::set_sink(capture);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        log_warn("thread " + std::to_string(t) + " msg " + std::to_string(i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  Logger::set_sink(nullptr);  // restore stderr for later tests

  std::vector<std::string> lines = capture->lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<std::vector<bool>> seen(kThreads, std::vector<bool>(kPerThread));
  for (const std::string& line : lines) {
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[WARN] thread %d msg %d", &t, &i), 2)
        << "mangled line: " << line;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kPerThread);
    EXPECT_FALSE(seen[t][i]) << "duplicate line: " << line;
    seen[t][i] = true;
  }
}

}  // namespace
}  // namespace libra
