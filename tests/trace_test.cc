#include <gtest/gtest.h>

#include <sstream>

#include "trace/lte_model.h"
#include "trace/rate_trace.h"
#include "trace/trace_io.h"

namespace libra {
namespace {

TEST(ConstantTrace, AlwaysSameRate) {
  ConstantTrace t(mbps(48));
  EXPECT_DOUBLE_EQ(t.rate_at(0), mbps(48));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(100)), mbps(48));
  EXPECT_DOUBLE_EQ(t.average_rate(0, sec(10)), mbps(48));
}

TEST(ConstantTrace, RejectsNonPositive) {
  EXPECT_THROW(ConstantTrace(0), std::invalid_argument);
  EXPECT_THROW(ConstantTrace(-1), std::invalid_argument);
}

TEST(PiecewiseTrace, LooksUpSegments) {
  PiecewiseTrace t({{0, mbps(10)}, {sec(1), mbps(20)}, {sec(2), mbps(5)}});
  EXPECT_DOUBLE_EQ(t.rate_at(0), mbps(10));
  EXPECT_DOUBLE_EQ(t.rate_at(msec(500)), mbps(10));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(1)), mbps(20));
  EXPECT_DOUBLE_EQ(t.rate_at(msec(1500)), mbps(20));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(5)), mbps(5));  // holds last
}

TEST(PiecewiseTrace, BeforeFirstSegmentUsesFirstRate) {
  PiecewiseTrace t({{sec(1), mbps(20)}});
  EXPECT_DOUBLE_EQ(t.rate_at(0), mbps(20));
}

TEST(PiecewiseTrace, LoopsWithPeriod) {
  PiecewiseTrace t({{0, mbps(10)}, {sec(1), mbps(20)}}, sec(2));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(2)), mbps(10));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(3)), mbps(20));
  EXPECT_DOUBLE_EQ(t.rate_at(sec(4) + msec(500)), mbps(10));
}

TEST(PiecewiseTrace, AverageRateIntegratesExactly) {
  PiecewiseTrace t({{0, mbps(10)}, {sec(1), mbps(30)}});
  // [0,2s): 1s at 10 + 1s at 30 -> mean 20.
  EXPECT_NEAR(t.average_rate(0, sec(2)), mbps(20), 1.0);
  EXPECT_NEAR(t.average_rate(msec(500), msec(1500)), mbps(20), 1.0);
}

TEST(PiecewiseTrace, AverageRateAcrossLoop) {
  PiecewiseTrace t({{0, mbps(10)}, {sec(1), mbps(30)}}, sec(2));
  EXPECT_NEAR(t.average_rate(0, sec(4)), mbps(20), 1.0);
}

TEST(PiecewiseTrace, Validation) {
  EXPECT_THROW(PiecewiseTrace({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseTrace({{0, mbps(1)}, {0, mbps(2)}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseTrace({{0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseTrace({{0, mbps(1)}, {sec(2), mbps(2)}}, sec(1)),
               std::invalid_argument);
}

TEST(StepTrace, CyclesLevels) {
  auto t = make_step_trace({mbps(20), mbps(5)}, sec(10));
  EXPECT_DOUBLE_EQ(t->rate_at(sec(3)), mbps(20));
  EXPECT_DOUBLE_EQ(t->rate_at(sec(13)), mbps(5));
  EXPECT_DOUBLE_EQ(t->rate_at(sec(23)), mbps(20));  // wrapped
}

TEST(StepTrace, Validation) {
  EXPECT_THROW(make_step_trace({}, sec(1)), std::invalid_argument);
  EXPECT_THROW(make_step_trace({mbps(1)}, 0), std::invalid_argument);
}

TEST(LteModel, StaysInsideBand) {
  auto t = make_lte_trace(LteProfile::kDriving, sec(60), 7);
  LteModelParams p = lte_profile_params(LteProfile::kDriving);
  for (SimTime at = 0; at < sec(60); at += msec(100)) {
    EXPECT_GE(t->rate_at(at), p.min_rate);
    EXPECT_LE(t->rate_at(at), p.max_rate);
  }
}

TEST(LteModel, DeterministicForSeed) {
  auto a = make_lte_trace(LteProfile::kWalking, sec(30), 42);
  auto b = make_lte_trace(LteProfile::kWalking, sec(30), 42);
  for (SimTime at = 0; at < sec(30); at += msec(500))
    EXPECT_DOUBLE_EQ(a->rate_at(at), b->rate_at(at));
}

TEST(LteModel, SeedsProduceDifferentTraces) {
  auto a = make_lte_trace(LteProfile::kWalking, sec(30), 1);
  auto b = make_lte_trace(LteProfile::kWalking, sec(30), 2);
  bool differ = false;
  for (SimTime at = 0; at < sec(30); at += msec(500))
    differ |= a->rate_at(at) != b->rate_at(at);
  EXPECT_TRUE(differ);
}

// The defining property of the mobility profiles: variability grows from
// stationary to driving.
TEST(LteModel, VolatilityOrdering) {
  auto cov = [](LteProfile p) {
    auto t = make_lte_trace(p, sec(120), 5);
    double sum = 0, sq = 0;
    int n = 0;
    for (SimTime at = 0; at < sec(120); at += msec(100)) {
      double r = t->rate_at(at);
      sum += r;
      sq += r * r;
      ++n;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    return std::sqrt(std::max(0.0, var)) / mean;
  };
  double s = cov(LteProfile::kStationary);
  double w = cov(LteProfile::kWalking);
  double d = cov(LteProfile::kDriving);
  EXPECT_LT(s, w);
  EXPECT_LT(w, d);
}

TEST(LteModel, RejectsBadLength) {
  EXPECT_THROW(make_lte_trace(LteProfile::kWalking, 0, 1), std::invalid_argument);
}

TEST(TraceIo, MahimahiRoundTripPreservesRate) {
  ConstantTrace original(mbps(12));
  std::stringstream buf;
  write_mahimahi(original, sec(10), buf);
  auto restored = read_mahimahi(buf);
  // 12 Mbps = 1000 packets/s: binned rate should match closely.
  EXPECT_NEAR(restored->average_rate(0, sec(10)), mbps(12), mbps(0.5));
}

TEST(TraceIo, MahimahiEmitsOneLinePerPacket) {
  ConstantTrace t(mbps(12));  // 1 packet per ms
  std::stringstream buf;
  write_mahimahi(t, sec(1), buf);
  int lines = 0;
  std::string line;
  while (std::getline(buf, line)) ++lines;
  EXPECT_NEAR(lines, 1000, 2);
}

TEST(TraceIo, ReadRejectsEmpty) {
  std::stringstream buf("");
  EXPECT_THROW(read_mahimahi(buf), std::runtime_error);
}

TEST(TraceIo, ReadSkipsComments) {
  std::stringstream buf("# header\n1\n2\n3\n");
  auto t = read_mahimahi(buf);
  EXPECT_GT(t->average_rate(0, msec(4)), 0.0);
}

TEST(TraceIo, VariableTraceRoundTripPreservesShape) {
  auto original = make_step_trace({mbps(24), mbps(6)}, sec(2));
  std::stringstream buf;
  write_mahimahi(*original, sec(4), buf);
  auto restored = read_mahimahi(buf);
  EXPECT_NEAR(restored->average_rate(0, sec(2)), mbps(24), mbps(1));
  EXPECT_NEAR(restored->average_rate(sec(2), sec(4)), mbps(6), mbps(1));
}

}  // namespace
}  // namespace libra
