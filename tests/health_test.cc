// FleetHealth unit tests: window-roll bookkeeping, the fixed-bucket RTT
// percentile math, each anomaly detector on hand-built timelines, and the
// JSON serialization contract. The end-to-end properties (detector behavior
// on real fleet runs, serial/sharded byte-identity) live in fleet_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/health.h"
#include "obs/json_parse.h"

namespace libra {
namespace {

std::vector<FleetFlowMeta> backlogged_metas(int flows,
                                            std::int64_t min_rtt_us = 10'000) {
  std::vector<FleetFlowMeta> metas(static_cast<std::size_t>(flows));
  for (FleetFlowMeta& m : metas) m.min_rtt_us = min_rtt_us;
  return metas;
}

TEST(FleetStats, RollFlushesAccumulatorsIntoTheFirstPendingWindow) {
  FleetHealth h;
  h.enable({});  // 100 ms windows
  h.prepare(msec(300), backlogged_metas(1));

  // Window 0: two ACKs, one send, one loss.
  h.on_send(0);
  h.on_ack(0, 1000, msec(10));
  h.on_ack(0, 500, msec(12));
  h.on_loss(0);
  EXPECT_FALSE(h.needs_roll(0, msec(99)));
  ASSERT_TRUE(h.needs_roll(0, msec(150)));
  h.roll(0, msec(150), /*cwnd=*/5000, /*pacing_bps=*/1e6);

  const FleetTimeline& tl = h.timeline();
  ASSERT_EQ(tl.n_windows, 3);
  const FlowWindowRow& w0 = tl.row(0, 0);
  EXPECT_EQ(w0.acked_bytes, 1500);
  EXPECT_EQ(w0.sent, 1);
  EXPECT_EQ(w0.lost, 1);
  EXPECT_EQ(w0.rtt_samples, 2);
  EXPECT_EQ(w0.rtt_sum_us, msec(10) + msec(12));
  EXPECT_EQ(w0.rtt_min_us, msec(10));
  EXPECT_EQ(w0.cwnd_bytes, 5000);
  EXPECT_EQ(w0.pacing_rate_bps, 1e6);

  // Window 1 accumulates after the roll; flush_all closes 1 and 2.
  h.on_ack(0, 2000, msec(20));
  h.flush_all(0, /*cwnd=*/7000, /*pacing_bps=*/2e6);
  EXPECT_EQ(tl.row(0, 1).acked_bytes, 2000);
  EXPECT_EQ(tl.row(0, 1).cwnd_bytes, 7000);
  EXPECT_EQ(tl.row(0, 2).acked_bytes, 0);
  EXPECT_EQ(tl.row(0, 2).rtt_samples, 0);
  EXPECT_EQ(tl.row(0, 2).cwnd_bytes, 7000);
}

TEST(FleetStats, SkippedWindowsFlushEmptyAndKeepTheGrid) {
  FleetHealth h;
  h.enable({});
  h.prepare(msec(500), backlogged_metas(1));
  h.on_ack(0, 100, msec(5));
  // An idle gap: next event lands three windows later; windows 0-2 flush at
  // once, the pending bytes belong to window 0 by the needs_roll invariant.
  h.roll(0, msec(350), 1000, 0.0);
  const FleetTimeline& tl = h.timeline();
  EXPECT_EQ(tl.row(0, 0).acked_bytes, 100);
  EXPECT_EQ(tl.row(0, 1).acked_bytes, 0);
  EXPECT_EQ(tl.row(0, 2).acked_bytes, 0);
  EXPECT_FALSE(h.needs_roll(0, msec(399)));
  EXPECT_TRUE(h.needs_roll(0, msec(400)));
}

TEST(FleetStats, LastWindowAbsorbsTheFinalInstant) {
  FleetHealth h;
  h.enable({});
  h.prepare(msec(200), backlogged_metas(1));
  h.roll(0, msec(150), 0, 0.0);  // now in the last window
  // t == duration events (and anything later) still belong to the last
  // window: no roll fires past the end of the grid.
  EXPECT_FALSE(h.needs_roll(0, msec(200)));
  EXPECT_FALSE(h.needs_roll(0, msec(999)));
  h.on_ack(0, 42, msec(1));
  h.flush_all(0, 0, 0.0);
  EXPECT_EQ(h.timeline().row(0, 1).acked_bytes, 42);
}

TEST(FleetStats, P95IsTheHistogramBucketUpperEdge) {
  FleetHealth h;
  h.enable({});  // 500 us buckets
  h.prepare(msec(100), backlogged_metas(1));
  // 95 samples in bucket [1000, 1500), 5 far above: rank ceil(95% of 100)
  // = 95 lands in the low bucket, so p95 reports its upper edge.
  for (int i = 0; i < 95; ++i) h.on_ack(0, 1, 1200);
  for (int i = 0; i < 5; ++i) h.on_ack(0, 1, 20'000);
  h.flush_all(0, 0, 0.0);
  EXPECT_EQ(h.timeline().row(0, 0).rtt_p95_us, 1500);
  EXPECT_EQ(h.timeline().row(0, 0).rtt_min_us, 1200);
}

TEST(FleetStats, P95OverflowBucketClampsToTheSpan) {
  FleetStatsConfig cfg;  // 96 buckets x 500 us = 48 ms span
  FleetHealth h;
  h.enable(cfg);
  h.prepare(msec(100), backlogged_metas(1));
  for (int i = 0; i < 10; ++i) h.on_ack(0, 1, sec(1));
  h.flush_all(0, 0, 0.0);
  EXPECT_EQ(h.timeline().row(0, 0).rtt_p95_us, 96 * 500);
}

TEST(FleetStats, EnableRejectsBadLayouts) {
  FleetHealth h;
  FleetStatsConfig bad;
  bad.window = 0;
  EXPECT_THROW(h.enable(bad), std::invalid_argument);
  bad.window = msec(100);
  bad.rtt_buckets = 0;
  EXPECT_THROW(h.enable(bad), std::invalid_argument);
}

// --- detectors on hand-built timelines --------------------------------------

/// W windows of 100 ms for `flows` backlogged flows, every row pre-filled
/// with `acked` bytes and a healthy RTT so individual tests only perturb the
/// cells under test.
FleetTimeline healthy_timeline(int flows, int windows,
                               std::int64_t acked = 10'000) {
  FleetTimeline tl;
  tl.config = FleetStatsConfig{};
  tl.duration = static_cast<SimDuration>(windows) * tl.config.window;
  tl.n_windows = windows;
  tl.metas = backlogged_metas(flows);
  tl.rows.assign(static_cast<std::size_t>(flows * windows), FlowWindowRow{});
  for (int f = 0; f < flows; ++f) {
    for (int w = 0; w < windows; ++w) {
      FlowWindowRow& row =
          tl.rows[static_cast<std::size_t>(f * windows + w)];
      row.acked_bytes = acked;
      row.sent = 100;
      row.lost = 0;
      row.rtt_samples = 20;
      row.rtt_sum_us = 20 * 12'000;
      row.rtt_min_us = 10'000;
      row.rtt_p95_us = 15'000;
    }
  }
  return tl;
}

FlowWindowRow& row_ref(FleetTimeline& tl, int flow, int w) {
  return tl.rows[static_cast<std::size_t>(flow * tl.n_windows + w)];
}

TEST(HealthDetect, HealthyTimelineProducesNoIncidents) {
  const HealthReport r = analyze_health(healthy_timeline(4, 30));
  EXPECT_TRUE(r.incidents.empty());
  EXPECT_EQ(r.flows, 4);
  EXPECT_EQ(r.n_windows, 30);
  EXPECT_DOUBLE_EQ(r.path_floor_rtt_ms, 10.0);
  ASSERT_EQ(r.fleet.size(), 30u);
  EXPECT_EQ(r.fleet[0].active, 4);
  EXPECT_EQ(r.fleet[0].progressing, 4);
  EXPECT_DOUBLE_EQ(r.fleet[0].jain, 1.0);
}

TEST(HealthDetect, StarvationNeedsTheConfiguredRunLength) {
  FleetTimeline tl = healthy_timeline(4, 30);
  for (int w = 12; w < 30; ++w) row_ref(tl, 3, w).acked_bytes = 0;
  const HealthReport r = analyze_health(tl);
  ASSERT_EQ(r.count(IncidentKind::kStarvation), 1);
  const Incident& inc = r.incidents[0];
  EXPECT_EQ(inc.kind, IncidentKind::kStarvation);
  EXPECT_EQ(inc.flow, 3);
  EXPECT_EQ(inc.window, 12);
  EXPECT_EQ(inc.span, 18);

  // A run shorter than the threshold stays silent.
  FleetTimeline ok = healthy_timeline(4, 30);
  for (int w = 12; w < 21; ++w) row_ref(ok, 3, w).acked_bytes = 0;
  EXPECT_FALSE(analyze_health(ok).has(IncidentKind::kStarvation));
}

TEST(HealthDetect, MinRttCorruptionRequiresBaselineAndLockout) {
  // Flow 3's lifetime baseline absorbed 20 ms of standing queue AND its
  // goodput collapsed to ~0.1% of fair share: the corruption incident.
  FleetTimeline tl = healthy_timeline(4, 30);
  tl.metas[3].min_rtt_us = 30'000;  // floor 10 ms, threshold max(18, 13) = 18
  for (int w = 0; w < 30; ++w) row_ref(tl, 3, w).acked_bytes = 10;
  const HealthReport r = analyze_health(tl);
  ASSERT_EQ(r.count(IncidentKind::kMinRttCorruption), 1);
  for (const Incident& inc : r.incidents) {
    if (inc.kind != IncidentKind::kMinRttCorruption) continue;
    EXPECT_EQ(inc.flow, 3);
    EXPECT_DOUBLE_EQ(inc.value, 30.0);
    EXPECT_DOUBLE_EQ(inc.baseline, 10.0);
  }

  // Same polluted baseline with a healthy goodput share: every CCA's late
  // flows look like this in a deep buffer, and none of them is an incident.
  FleetTimeline kept = healthy_timeline(4, 30);
  kept.metas[3].min_rtt_us = 30'000;
  EXPECT_FALSE(analyze_health(kept).has(IncidentKind::kMinRttCorruption));
}

TEST(HealthDetect, FairnessCollapseIsFleetScoped) {
  // Windows 10-16: one flow hogs the window entirely; Jain over 4 active
  // flows = 0.25 < 0.35 for 7 windows. Too short for starvation (needs 10).
  FleetTimeline tl = healthy_timeline(4, 30);
  for (int w = 10; w < 17; ++w)
    for (int f = 1; f < 4; ++f) row_ref(tl, f, w).acked_bytes = 0;
  const HealthReport r = analyze_health(tl);
  EXPECT_FALSE(r.has(IncidentKind::kStarvation));
  ASSERT_EQ(r.count(IncidentKind::kFairnessCollapse), 1);
  for (const Incident& inc : r.incidents) {
    if (inc.kind != IncidentKind::kFairnessCollapse) continue;
    EXPECT_EQ(inc.flow, -1);
    EXPECT_EQ(inc.window, 10);
    EXPECT_EQ(inc.span, 7);
    EXPECT_DOUBLE_EQ(inc.value, 0.25);
  }
}

TEST(HealthDetect, RttBlowupComparesP95AgainstThePathFloor) {
  FleetTimeline tl = healthy_timeline(4, 30);
  for (int w = 12; w < 15; ++w) row_ref(tl, 1, w).rtt_p95_us = 100'000;
  const HealthReport r = analyze_health(tl);
  ASSERT_EQ(r.count(IncidentKind::kRttBlowup), 1);
  const Incident& inc = r.incidents[0];
  EXPECT_EQ(inc.flow, 1);
  EXPECT_EQ(inc.span, 3);
  EXPECT_DOUBLE_EQ(inc.value, 100.0);
  EXPECT_DOUBLE_EQ(inc.threshold, 80.0);  // 8 x 10 ms floor

  // Two windows (below rtt_blowup_windows = 3) stay silent.
  FleetTimeline ok = healthy_timeline(4, 30);
  for (int w = 12; w < 14; ++w) row_ref(ok, 1, w).rtt_p95_us = 100'000;
  EXPECT_FALSE(analyze_health(ok).has(IncidentKind::kRttBlowup));
}

TEST(HealthDetect, RetxStormNeedsVolumeAndRate) {
  FleetTimeline tl = healthy_timeline(4, 30);
  row_ref(tl, 2, 11).lost = 50;
  row_ref(tl, 2, 12).lost = 40;
  const HealthReport r = analyze_health(tl);
  ASSERT_EQ(r.count(IncidentKind::kRetxStorm), 1);
  const Incident& inc = r.incidents[0];
  EXPECT_EQ(inc.flow, 2);
  EXPECT_EQ(inc.window, 11);
  EXPECT_DOUBLE_EQ(inc.value, 0.5);

  // Same loss fraction on negligible volume: not a storm.
  FleetTimeline ok = healthy_timeline(4, 30);
  row_ref(ok, 2, 11).sent = 10;
  row_ref(ok, 2, 11).lost = 5;
  row_ref(ok, 2, 12).sent = 10;
  row_ref(ok, 2, 12).lost = 5;
  EXPECT_FALSE(analyze_health(ok).has(IncidentKind::kRetxStorm));
}

TEST(HealthDetect, WarmupWindowsAreExemptFromWindowedDetectors) {
  FleetTimeline tl = healthy_timeline(4, 30);
  // A violent startup transient entirely inside the warmup: ignored.
  for (int w = 0; w < 10; ++w) {
    row_ref(tl, 0, w).lost = 90;
    for (int f = 1; f < 4; ++f) row_ref(tl, f, w).acked_bytes = 0;
  }
  EXPECT_TRUE(analyze_health(tl).incidents.empty());
}

TEST(HealthDetect, IncidentsSortBySeverityWithDeterministicTieBreak) {
  FleetTimeline tl = healthy_timeline(4, 40);
  // Mild blowup on flow 1, severe storm on flow 2.
  for (int w = 12; w < 15; ++w) row_ref(tl, 1, w).rtt_p95_us = 90'000;
  for (int w = 11; w < 16; ++w) row_ref(tl, 2, w).lost = 95;
  const HealthReport r = analyze_health(tl);
  ASSERT_GE(r.incidents.size(), 2u);
  EXPECT_EQ(r.incidents[0].kind, IncidentKind::kRetxStorm);
  for (std::size_t i = 1; i < r.incidents.size(); ++i)
    EXPECT_GE(r.incidents[i - 1].severity, r.incidents[i].severity);
}

TEST(HealthJson, ReportIsOneParsableLineWithTheContractFields) {
  FleetTimeline tl = healthy_timeline(4, 30);
  for (int w = 12; w < 30; ++w) row_ref(tl, 3, w).acked_bytes = 0;
  const HealthReport r = analyze_health(tl);
  const std::string doc = health_report_json(r);
  EXPECT_EQ(doc.find('\n'), std::string::npos);

  const JsonValue v = json_parse(doc);
  const JsonValue* h = v.find("health");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("windows")->number_or(0), 30);
  EXPECT_EQ(h->find("flows")->number_or(0), 4);
  EXPECT_DOUBLE_EQ(h->find("path_floor_rtt_ms")->number_or(0), 10.0);
  ASSERT_TRUE(h->find("fleet")->is_array());
  EXPECT_EQ(h->find("fleet")->array.size(), 30u);
  const JsonValue& w0 = h->find("fleet")->array[0];
  // 4 flows x 10 KB per 100 ms window = 3.2 Mbps.
  EXPECT_DOUBLE_EQ(w0.find("goodput_bps")->number_or(0), 3.2e6);
  ASSERT_TRUE(h->find("incidents")->is_array());
  ASSERT_EQ(h->find("incidents")->array.size(), 1u);
  EXPECT_EQ(h->find("incidents")->array[0].find("kind")->string_or(""),
            "starvation");
}

}  // namespace
}  // namespace libra
