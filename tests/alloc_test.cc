// Allocation audits, in one binary because it replaces the global operator
// new with a counting wrapper:
//   - PPO training path: after the first (warm-up) update, Ppo::update must
//     perform zero heap allocations — every workspace is sized at
//     construction;
//   - profiler spans: a disabled PROF_SCOPE allocates nothing (the zero-cost
//     hot-path claim), and an enabled span over an already-seen tree path
//     allocates nothing either (steady-state profiling doesn't perturb the
//     allocator);
//   - telemetry: disabled hooks allocate nothing, and enabled steady-state
//     sampling (including M4 compactions) allocates nothing after the first
//     sample sized the columnar store;
//   - fleet health: disabled hooks allocate nothing, and an enabled
//     accumulate/roll steady state allocates nothing after prepare() sized
//     the timeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "obs/fleet_stats.h"
#include "obs/profiler.h"
#include "obs/telemetry.h"
#include "rl/matrix.h"
#include "rl/ppo.h"
#include "rl/simd.h"
#include "util/rng.h"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace libra {
namespace {

void fill_buffer(PpoAgent& agent, Rng& rng) {
  const PpoConfig& cfg = agent.config();
  Vector state(cfg.state_dim);
  while (agent.buffered_transitions() < cfg.horizon) {
    for (double& v : state) v = rng.uniform(-1.0, 1.0);
    double a = agent.act(state);
    agent.give_reward(-std::abs(a - state[0]));
  }
}

TEST(PpoAllocation, UpdateIsAllocationFreeAfterWarmup) {
  PpoConfig cfg;
  cfg.state_dim = 8;
  cfg.hidden = {32, 32};
  cfg.horizon = 256;
  cfg.minibatch = 64;
  cfg.seed = 3;
  cfg.collect_only = true;  // fill without auto-triggered updates
  PpoAgent agent(cfg);
  Rng rng(4);

  fill_buffer(agent, rng);
  agent.flush_update(0.0);  // warm-up
  ASSERT_EQ(agent.update_count(), 1);

  fill_buffer(agent, rng);
  g_allocations.store(0);
  g_counting.store(true);
  agent.flush_update(0.0);
  g_counting.store(false);

  EXPECT_EQ(agent.update_count(), 2);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "Ppo::update allocated after warm-up; a workspace is being resized "
         "past its reserved capacity";
}

TEST(PpoAllocation, UpdateIsAllocationFreeOnBothKernelPaths) {
  // Same audit as above, once per dispatch decision: the AVX2 kernels write
  // into the same caller-owned buffers as the scalar ones, and the dispatch
  // itself is a relaxed atomic load — neither path may touch the heap.
  const simd::Isa before = simd::active();
  PpoConfig cfg;
  cfg.state_dim = 8;
  cfg.hidden = {32, 32};
  cfg.horizon = 256;
  cfg.minibatch = 64;
  cfg.seed = 3;
  cfg.collect_only = true;
  PpoAgent agent(cfg);
  Rng rng(4);
  fill_buffer(agent, rng);
  agent.flush_update(0.0);  // warm-up

  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::avx2_supported()) isas.push_back(simd::Isa::kAvx2);
  for (simd::Isa isa : isas) {
    simd::force(isa);
    fill_buffer(agent, rng);
    g_allocations.store(0);
    g_counting.store(true);
    agent.flush_update(0.0);
    g_counting.store(false);
    EXPECT_EQ(g_allocations.load(), 0u)
        << "Ppo::update allocated on the " << simd::isa_name(isa)
        << " kernel path";
  }
  simd::force(before);
}

TEST(SimdDispatchAllocation, DispatchAndKernelsAllocateNothing) {
  const simd::Isa before = simd::active();
  Matrix w(16, 16);
  Vector x(16, 0.25), y(16);
  g_allocations.store(0);
  g_counting.store(true);
  // The dispatch decision (force + the relaxed-load predicate) and a kernel
  // run into pre-sized buffers: zero heap traffic end to end.
  simd::force(simd::Isa::kScalar);
  (void)simd::use_avx2();
  w.multiply_into(x, y);
  if (simd::avx2_supported()) {
    simd::force(simd::Isa::kAvx2);
    w.multiply_into(x, y);
  }
  simd::force(before);
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "the kernel dispatch layer must not allocate";
}

TEST(TelemetryAllocation, DisabledHooksAllocateNothing) {
  Telemetry t;
  TelemetryFlowSample fs;
  TelemetryQueueSample qs;
  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) {
    t.stage_event(msec(i), 0, i % 4);
    t.sample_flow(0, fs);
    t.sample_queue(0, qs);
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "disabled telemetry hooks must be a branch on enabled_, nothing else";
}

TEST(TelemetryAllocation, EnabledSteadyStateSamplingAllocatesNothing) {
  Telemetry t;
  TelemetryConfig cfg;
  cfg.max_buckets = 16;
  t.enable(cfg);
  TelemetryFlowSample fs;
  TelemetryQueueSample qs;
  // Warm-up: first samples create the flow/queue series (columns reserved to
  // max_buckets) and the stage-event buffer was reserved by enable().
  t.sample_flow(0, fs);
  t.sample_queue(0, qs);

  g_allocations.store(0);
  g_counting.store(true);
  // 10k samples into 16 buckets: many pairwise compactions, all in place.
  for (int i = 0; i < 10000; ++i) {
    fs.cwnd_bytes = static_cast<double>(i);
    t.sample_flow(0, fs);
    t.sample_queue(0, qs);
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state sampling or compaction touched the heap; a column "
         "outgrew its reserved capacity";
}

TEST(FleetHealthAllocation, DisabledHooksAllocateNothing) {
  FleetHealth h;
  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) {
    h.on_ack(0, 1500, msec(10));
    h.on_send(0);
    h.on_loss(0);
    (void)h.needs_roll(0, msec(i));
    h.roll(0, msec(i), 0, 0.0);
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "disabled fleet-health hooks must be a branch on enabled_, nothing "
         "else";
}

TEST(FleetHealthAllocation, EnabledSteadyStateAllocatesNothing) {
  FleetHealth h;
  h.enable({});  // 100 ms windows
  std::vector<FleetFlowMeta> metas(4);
  h.prepare(sec(2), std::move(metas));

  g_allocations.store(0);
  g_counting.store(true);
  // 20 windows x 4 flows x 50 events: accumulate, per-event roll checks,
  // window flushes, and the final inclusive flush — all into storage sized
  // by prepare().
  for (int w = 0; w < 20; ++w) {
    for (int f = 0; f < 4; ++f) {
      for (int i = 0; i < 50; ++i) {
        const SimTime now = static_cast<SimTime>(w) * msec(100) +
                            static_cast<SimTime>(i) * msec(2);
        if (h.needs_roll(f, now)) h.roll(f, now, 10'000, 1e7);
        h.on_send(f);
        h.on_ack(f, 1500, msec(10) + i);
        if (i % 10 == 0) h.on_loss(f);
      }
    }
  }
  for (int f = 0; f < 4; ++f) {
    h.flush_all(f, 10'000, 1e7);
    h.set_flow_outcome(f, -1, msec(10));
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state fleet-health accumulation touched the heap; prepare() "
         "must size every accumulator and row up front";
}

TEST(ProfilerAllocation, DisabledSpanAllocatesNothing) {
  Profiler::instance().disable();
  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) {
    PROF_SCOPE("alloc_test.disabled");
  }
  g_counting.store(false);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "a disabled PROF_SCOPE must be a relaxed load + branch, nothing else";
}

TEST(ProfilerAllocation, EnabledSteadyStateSpanAllocatesNothing) {
  Profiler::instance().disable();
  Profiler::instance().reset();
  Profiler::instance().enable();
  {
    // Warm-up: creates the thread's tree and the nodes for this path.
    PROF_SCOPE("alloc_test.outer");
    PROF_SCOPE("alloc_test.inner");
  }
  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) {
    PROF_SCOPE("alloc_test.outer");
    PROF_SCOPE("alloc_test.inner");
  }
  g_counting.store(false);
  Profiler::instance().disable();
  Profiler::instance().reset();
  EXPECT_EQ(g_allocations.load(), 0u)
      << "re-entering an existing tree path must not allocate";
}

}  // namespace
}  // namespace libra
