// Allocation audit for the PPO training path: after the first (warm-up)
// update, Ppo::update must perform zero heap allocations — every workspace is
// sized at construction. Lives in its own binary because it replaces the
// global operator new with a counting wrapper.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "rl/ppo.h"
#include "util/rng.h"

namespace {
std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace libra {
namespace {

void fill_buffer(PpoAgent& agent, Rng& rng) {
  const PpoConfig& cfg = agent.config();
  Vector state(cfg.state_dim);
  while (agent.buffered_transitions() < cfg.horizon) {
    for (double& v : state) v = rng.uniform(-1.0, 1.0);
    double a = agent.act(state);
    agent.give_reward(-std::abs(a - state[0]));
  }
}

TEST(PpoAllocation, UpdateIsAllocationFreeAfterWarmup) {
  PpoConfig cfg;
  cfg.state_dim = 8;
  cfg.hidden = {32, 32};
  cfg.horizon = 256;
  cfg.minibatch = 64;
  cfg.seed = 3;
  cfg.collect_only = true;  // fill without auto-triggered updates
  PpoAgent agent(cfg);
  Rng rng(4);

  fill_buffer(agent, rng);
  agent.flush_update(0.0);  // warm-up
  ASSERT_EQ(agent.update_count(), 1);

  fill_buffer(agent, rng);
  g_allocations.store(0);
  g_counting.store(true);
  agent.flush_update(0.0);
  g_counting.store(false);

  EXPECT_EQ(agent.update_count(), 2);
  EXPECT_EQ(g_allocations.load(), 0u)
      << "Ppo::update allocated after warm-up; a workspace is being resized "
         "past its reserved capacity";
}

}  // namespace
}  // namespace libra
