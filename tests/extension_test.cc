// Tests for the paper's Sec. 7 extensions and robustness/failure-injection
// paths not covered by the per-module suites.
#include <gtest/gtest.h>

#include <cstdio>

#include "classic/illinois.h"
#include "classic/newreno.h"
#include "classic/westwood.h"
#include "core/factory.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "trace/trace_io.h"

namespace libra {
namespace {

std::shared_ptr<RlBrain> tiny_brain(std::uint64_t seed = 3) {
  RlCcaConfig cfg = libra_rl_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed, {8, 8}),
                                   feature_frame_size(cfg.features));
}

// Sec. 7: swapping the classic component.
class LibraOverClassic : public ::testing::TestWithParam<std::string> {};

std::unique_ptr<CongestionControl> make_classic(const std::string& name) {
  if (name == "westwood") return std::make_unique<Westwood>();
  if (name == "illinois") return std::make_unique<Illinois>();
  return std::make_unique<NewReno>();
}

TEST_P(LibraOverClassic, ConvergesOnFriendlyLink) {
  Scenario s = wired_scenario(24);
  s.duration = sec(20);
  auto brain = tiny_brain();
  RunSummary sum = run_single(
      s, [&] { return make_libra_over(make_classic(GetParam()), brain, false); },
      5);
  EXPECT_GT(sum.link_utilization, 0.6) << GetParam();
  EXPECT_LT(sum.avg_delay_ms, 150.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Classics, LibraOverClassic,
                         ::testing::Values("westwood", "illinois", "newreno"));

TEST(LibraOverClassic, NameReflectsComponent) {
  auto brain = tiny_brain();
  auto cca = make_libra_over(std::make_unique<Westwood>(), brain, false);
  EXPECT_EQ(cca->name(), "libra-westwood");
}

// Sec. 7 network profiles: satellite (long RTT, heavy random loss) and
// 5G-like abrupt swings — B-Libra-shaped robustness expectations.
TEST(ExtremeProfiles, LibraSurvivesSatellite) {
  Scenario s = satellite_scenario();
  s.duration = sec(40);
  auto brain = tiny_brain();
  RunSummary sum = run_single(
      s, [&] { return make_c_libra(brain, false); }, 3, sec(10));
  EXPECT_GT(sum.total_throughput_bps, mbps(0.5));
}

TEST(ExtremeProfiles, LibraSurvivesFiveG) {
  Scenario s = fiveg_scenario();
  s.duration = sec(25);
  auto brain = tiny_brain();
  RunSummary sum = run_single(s, [&] { return make_c_libra(brain, false); }, 3);
  EXPECT_GT(sum.link_utilization, 0.2);
}

// Failure injection: a flow that loses its entire first flight (dead link at
// start) must still come up once capacity appears.
TEST(FailureInjection, RecoversFromInitialBlackout) {
  LinkConfig cfg;
  cfg.capacity = std::make_unique<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{{0, 0.0}, {sec(3), mbps(24)}});
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  auto brain = tiny_brain();
  net.add_flow(make_c_libra(brain, false));
  net.run_until(sec(20));
  EXPECT_GT(net.flow(0).throughput_in(sec(10), sec(20)), mbps(5));
}

// Failure injection: mid-flow blackout of 2 s (LTE tunnel) with queued data.
TEST(FailureInjection, RecoversFromMidFlowBlackout) {
  LinkConfig cfg;
  cfg.capacity = std::make_unique<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{
          {0, mbps(24)}, {sec(6), 0.0}, {sec(8), mbps(24)}});
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<NewReno>());
  net.run_until(sec(20));
  EXPECT_GT(net.flow(0).throughput_in(sec(12), sec(20)), mbps(12));
}

// Trace file round trip through the filesystem API.
TEST(TraceFiles, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/trace.mahi";
  auto original = make_lte_trace(LteProfile::kWalking, sec(20), 5);
  write_mahimahi_file(*original, sec(20), path);
  auto restored = read_mahimahi_file(path);
  EXPECT_NEAR(restored->average_rate(0, sec(20)),
              original->average_rate(0, sec(20)),
              original->average_rate(0, sec(20)) * 0.05);
  std::remove(path.c_str());
}

TEST(TraceFiles, MissingFileThrows) {
  EXPECT_THROW(read_mahimahi_file("/nonexistent/file.mahi"), std::runtime_error);
}

// Sender robustness: minimum pacing floor keeps even a silenced controller
// trickling (so feedback can resume).
class SilentCca final : public CongestionControl {
 public:
  void on_ack(const AckEvent&) override {}
  void on_loss(const LossEvent&) override {}
  RateBps pacing_rate() const override { return 1.0; /* absurdly low */ }
  std::int64_t cwnd_bytes() const override { return kInfiniteCwnd; }
  std::string name() const override { return "silent"; }
};

TEST(SenderRobustness, MinPacingFloorApplies) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(10));
  cfg.buffer_bytes = 150'000;
  cfg.propagation_delay = msec(10);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<SilentCca>());
  net.run_until(sec(10));
  // 64 kbps floor -> at least ~50 packets in 10 s.
  EXPECT_GT(net.flow(0).metrics().packets_acked, 40);
}

// Stochastic inference must not destabilize Libra: repeated runs on the same
// wired link stay in a tight utilization band (the Fig. 2b/Tab. 6 property).
TEST(SafetyAssurance, LibraUtilizationTightAcrossSeeds) {
  Scenario s = wired_scenario(24);
  s.duration = sec(20);
  auto brain = tiny_brain();
  double lo = 1.0, hi = 0.0;
  for (int seed = 0; seed < 5; ++seed) {
    RunSummary sum = run_single(
        s, [&] { return make_c_libra(brain, false); },
        static_cast<std::uint64_t>(seed));
    lo = std::min(lo, sum.link_utilization);
    hi = std::max(hi, sum.link_utilization);
  }
  EXPECT_GT(lo, 0.6);
  EXPECT_LT(hi - lo, 0.35);
}

}  // namespace
}  // namespace libra
