#include <gtest/gtest.h>

#include "util/ewma.h"
#include "util/fifo_ring.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/types.h"
#include "util/windowed_filter.h"

namespace libra {
namespace {

TEST(Types, UnitConversions) {
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_msec(msec(7)), 7.0);
  EXPECT_DOUBLE_EQ(mbps(10), 10e6);
  EXPECT_DOUBLE_EQ(to_mbps(mbps(48)), 48.0);
}

TEST(Types, TransmissionTime) {
  // 1500 bytes at 12 Mbps = 1 ms.
  EXPECT_EQ(transmission_time(1500, mbps(12)), msec(1));
  EXPECT_EQ(transmission_time(1500, 0), kSimTimeMax);
}

TEST(Types, BytesIn) {
  EXPECT_DOUBLE_EQ(bytes_in(sec(1), mbps(8)), 1e6);
  EXPECT_DOUBLE_EQ(bytes_in(msec(100), mbps(8)), 1e5);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.update(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.25);
  e.update(0.0);
  for (int i = 0; i < 100; ++i) e.update(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(Ewma, GainControlsSpeed) {
  Ewma fast(0.5), slow(0.05);
  fast.update(0);
  slow.update(0);
  fast.update(100);
  slow.update(100);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ValueOrFallback) {
  Ewma e;
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 7.0);
  e.update(3.0);
  EXPECT_DOUBLE_EQ(e.value_or(7.0), 3.0);
}

TEST(RingBuffer, PushAndIndexOldestFirst) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.at(0), 1);
  EXPECT_EQ(rb.at(1), 2);
  EXPECT_EQ(rb.back(), 2);
}

TEST(RingBuffer, OverwritesOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.at(0), 3);
  EXPECT_EQ(rb.at(1), 4);
  EXPECT_EQ(rb.at(2), 5);
}

TEST(RingBuffer, ThrowsOnBadAccess) {
  RingBuffer<int> rb(2);
  EXPECT_THROW(rb.at(0), std::out_of_range);
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i)
    if (a.uniform() != b.uniform()) any_different = true;
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(7);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng fresh(5);
  EXPECT_NE(child.uniform(), fresh.uniform());
}

TEST(WindowedFilter, MaxTracksBest) {
  WindowedMax<double> f(100);
  f.update(5.0, 0);
  f.update(3.0, 10);
  EXPECT_DOUBLE_EQ(f.best(), 5.0);
  f.update(9.0, 20);
  EXPECT_DOUBLE_EQ(f.best(), 9.0);
}

TEST(WindowedFilter, MaxExpiresOldBest) {
  WindowedMax<double> f(100);
  f.update(9.0, 0);
  f.update(5.0, 50);
  f.update(4.0, 80);
  // Window has passed since the 9.0 sample: it must fall out.
  f.update(3.0, 150);
  EXPECT_LT(f.best(), 9.0);
}

TEST(WindowedFilter, MinTracksBest) {
  WindowedMin<SimDuration> f(sec(10));
  f.update(msec(50), 0);
  f.update(msec(80), msec(1));
  EXPECT_EQ(f.best(), msec(50));
  f.update(msec(30), msec(2));
  EXPECT_EQ(f.best(), msec(30));
}

TEST(WindowedFilter, InvalidUntilFirstSample) {
  WindowedMax<double> f(10);
  EXPECT_FALSE(f.valid());
  f.update(1.0, 0);
  EXPECT_TRUE(f.valid());
}

TEST(FifoRing, FifoOrderAcrossGrowth) {
  FifoRing<int> q(2);
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.front(), i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(FifoRing, InterleavedPushPopWrapsAround) {
  FifoRing<int> q(4);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 50; ++round) {
    q.push_back(next_in++);
    q.push_back(next_in++);
    EXPECT_EQ(q.front(), next_out);
    q.pop_front();
    ++next_out;
  }
  EXPECT_EQ(q.size(), 50u);
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

}  // namespace
}  // namespace libra
