#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "rl/adam.h"
#include "rl/matrix.h"
#include "rl/mlp.h"
#include "rl/normalizer.h"
#include "rl/ppo.h"

namespace libra {
namespace {

TEST(Matrix, MultiplyVector) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]] * [1,1,1] = [6,15]
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(vals), std::end(vals), m.data().begin());
  Vector y = m.multiply({1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(Matrix, MultiplyTransposed) {
  Matrix m(2, 3);
  double vals[] = {1, 2, 3, 4, 5, 6};
  std::copy(std::begin(vals), std::end(vals), m.data().begin());
  Vector y = m.multiply_transposed({1, 1});
  EXPECT_DOUBLE_EQ(y[0], 5);
  EXPECT_DOUBLE_EQ(y[1], 7);
  EXPECT_DOUBLE_EQ(y[2], 9);
}

TEST(Matrix, AddOuter) {
  Matrix m(2, 2);
  m.add_outer({1, 2}, {3, 4}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6);
  EXPECT_DOUBLE_EQ(m(0, 1), 8);
  EXPECT_DOUBLE_EQ(m(1, 0), 12);
  EXPECT_DOUBLE_EQ(m(1, 1), 16);
}

TEST(Matrix, DimensionChecks) {
  // Matrix shape mismatches are assert-based (hot path); only the cold
  // helpers keep throwing.
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
#ifndef NDEBUG
  Matrix m(2, 3);
  EXPECT_DEATH(m.multiply({1, 1}), "dim mismatch");
  EXPECT_DEATH(m.add_outer({1}, {1, 1}), "dim mismatch");
#endif
}

TEST(Matrix, BlockedGemmTransBBitwiseMatchesFlat) {
  // The cache-blocked kernel promises bitwise identity with the flat one:
  // every c(i,j) is one sequential sum over k, just revisited tile by tile.
  // Exercise shapes that are odd with respect to both the 2x4 microkernel and
  // the (jb, kb) tiles, including tiles smaller than the dimensions.
  Rng rng(11);
  struct Shape { std::size_t m, k, n, jb, kb; };
  const Shape shapes[] = {
      {1, 1, 1, 64, 256}, {3, 5, 7, 2, 3},     {2, 300, 70, 64, 256},
      {5, 17, 9, 4, 8},   {16, 512, 512, 64, 256},
  };
  for (const Shape& s : shapes) {
    Matrix a(s.m, s.k), b(s.n, s.k), flat(s.m, s.n), blocked(s.m, s.n);
    for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
    for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
    gemm_transB(a, b, flat);
    gemm_transB_blocked(a, b, blocked, /*accumulate=*/false, s.jb, s.kb);
    ASSERT_EQ(flat.data(), blocked.data())
        << "m=" << s.m << " k=" << s.k << " n=" << s.n;
  }
}

TEST(Matrix, BlockedGemmTransBAccumulates) {
  Rng rng(12);
  Matrix a(3, 10), b(6, 10), c(3, 6), expect(3, 6);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < c.size(); ++i)
    c.data()[i] = expect.data()[i] = rng.uniform(-1.0, 1.0);
  Matrix prod(3, 6);
  gemm_transB(a, b, prod);
  for (std::size_t i = 0; i < expect.size(); ++i) expect.data()[i] += prod.data()[i];
  gemm_transB_blocked(a, b, c, /*accumulate=*/true, 4, 4);
  // The accumulate path interleaves the prior C value into the k-sum, so the
  // comparison is numeric (tight), not bitwise.
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c.data()[i], expect.data()[i], 1e-12) << i;
}

TEST(Mlp, WideForwardBatchMatchesPerSample) {
  // A 512-wide net crosses forward_batch's blocked-GEMM dispatch threshold;
  // rows of the batched result must stay bitwise equal to evaluate() per row.
  Rng rng(13);
  Mlp net({24, 512, 512, 1}, rng);
  MlpWorkspace ws;
  ws.configure(net, 16);
  ws.set_batch(16);
  Rng xr(14);
  for (double& v : ws.input().data()) v = xr.uniform(-2.0, 2.0);
  net.forward_batch(ws);
  for (std::size_t r = 0; r < 16; ++r) {
    Vector x(24);
    for (std::size_t c = 0; c < 24; ++c) x[c] = ws.input()(r, c);
    EXPECT_EQ(net.evaluate(x)[0], ws.output()(r, 0)) << "row " << r;
  }
}

TEST(Mlp, ForwardMatchesEvaluate) {
  Rng rng(3);
  Mlp net({4, 8, 2}, rng);
  Vector x{0.1, -0.2, 0.3, 0.4};
  Vector a = net.forward(x);
  Vector b = net.evaluate(x);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_DOUBLE_EQ(a[1], b[1]);
}

TEST(Mlp, RejectsBadShapes) {
  Rng rng(3);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({4, 0, 2}, rng), std::invalid_argument);
  Mlp net({2, 2}, rng);
  EXPECT_THROW(net.forward({1.0}), std::invalid_argument);
  EXPECT_THROW(net.backward({1.0}), std::logic_error);  // no cached pass
}

// Finite-difference gradient check: the single most important test of the
// from-scratch backprop.
TEST(Mlp, GradientsMatchFiniteDifferences) {
  Rng rng(7);
  Mlp net({3, 5, 1}, rng);
  Vector x{0.5, -0.3, 0.8};

  net.zero_gradients();
  net.forward(x);
  net.backward({1.0});  // dL/dy = 1 -> gradients of y itself

  const double eps = 1e-6;
  for (std::size_t li = 0; li < net.layers().size(); ++li) {
    Mlp::Layer& layer = net.layers()[li];
    for (std::size_t k = 0; k < layer.weights.size(); k += 3) {
      double saved = layer.weights.data()[k];
      layer.weights.data()[k] = saved + eps;
      double up = net.evaluate(x)[0];
      layer.weights.data()[k] = saved - eps;
      double down = net.evaluate(x)[0];
      layer.weights.data()[k] = saved;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(layer.grad_weights.data()[k], numeric, 1e-5)
          << "layer " << li << " weight " << k;
    }
    for (std::size_t k = 0; k < layer.bias.size(); ++k) {
      double saved = layer.bias[k];
      layer.bias[k] = saved + eps;
      double up = net.evaluate(x)[0];
      layer.bias[k] = saved - eps;
      double down = net.evaluate(x)[0];
      layer.bias[k] = saved;
      EXPECT_NEAR(layer.grad_bias[k], (up - down) / (2 * eps), 1e-5);
    }
  }
}

TEST(Mlp, BackwardReturnsInputGradient) {
  Rng rng(7);
  Mlp net({2, 4, 1}, rng);
  Vector x{0.3, -0.6};
  net.zero_gradients();
  net.forward(x);
  Vector dx = net.backward({1.0});
  ASSERT_EQ(dx.size(), 2u);

  const double eps = 1e-6;
  for (int i = 0; i < 2; ++i) {
    Vector xp = x, xm = x;
    xp[static_cast<std::size_t>(i)] += eps;
    xm[static_cast<std::size_t>(i)] -= eps;
    double numeric = (net.evaluate(xp)[0] - net.evaluate(xm)[0]) / (2 * eps);
    EXPECT_NEAR(dx[static_cast<std::size_t>(i)], numeric, 1e-5);
  }
}

TEST(Mlp, GradientsAccumulateAcrossBackwards) {
  Rng rng(7);
  Mlp net({2, 2, 1}, rng);
  net.zero_gradients();
  net.forward({1.0, 2.0});
  net.backward({1.0});
  double g1 = net.layers()[0].grad_weights.data()[0];
  net.forward({1.0, 2.0});
  net.backward({1.0});
  EXPECT_NEAR(net.layers()[0].grad_weights.data()[0], 2 * g1, 1e-12);
}

// The batched training path must reproduce the per-sample path exactly:
// outputs, accumulated parameter gradients, and input gradients, on random
// networks of several shapes.
TEST(Mlp, BatchForwardBackwardMatchesPerSample) {
  const std::vector<std::vector<std::size_t>> shapes{
      {3, 7, 1}, {5, 8, 4, 2}, {2, 16, 16, 1}};
  for (std::size_t trial = 0; trial < shapes.size(); ++trial) {
    const std::vector<std::size_t>& sizes = shapes[trial];
    Rng rng(11 + trial);
    Mlp batched(sizes, rng);
    Rng other(99);
    Mlp sample(sizes, other);
    sample.copy_parameters_from(batched);

    const std::size_t batch = 5;
    const std::size_t in = sizes.front(), out = sizes.back();
    Rng data(17 + trial);
    std::vector<Vector> xs(batch), gs(batch);
    for (std::size_t r = 0; r < batch; ++r) {
      xs[r].resize(in);
      gs[r].resize(out);
      for (double& v : xs[r]) v = data.uniform(-1.0, 1.0);
      for (double& v : gs[r]) v = data.uniform(-1.0, 1.0);
    }

    MlpWorkspace ws;
    ws.configure(batched, batch);
    ws.set_batch(batch);
    for (std::size_t r = 0; r < batch; ++r)
      std::copy(xs[r].begin(), xs[r].end(),
                ws.input().data().begin() + static_cast<std::ptrdiff_t>(r * in));
    batched.zero_gradients();
    batched.forward_batch(ws);
    for (std::size_t r = 0; r < batch; ++r)
      std::copy(gs[r].begin(), gs[r].end(),
                ws.output_grad().data().begin() +
                    static_cast<std::ptrdiff_t>(r * out));
    batched.backward_batch(ws, /*want_input_grad=*/true);

    sample.zero_gradients();
    for (std::size_t r = 0; r < batch; ++r) {
      Vector y = sample.forward(xs[r]);
      for (std::size_t j = 0; j < out; ++j)
        EXPECT_NEAR(ws.output()(r, j), y[j], 1e-9)
            << "shape " << trial << " row " << r;
      Vector dx = sample.backward(gs[r]);
      for (std::size_t j = 0; j < in; ++j)
        EXPECT_NEAR(ws.input_grad(r, j), dx[j], 1e-9);
    }
    for (std::size_t li = 0; li < batched.layers().size(); ++li) {
      const Mlp::Layer& lb = batched.layers()[li];
      const Mlp::Layer& ls = sample.layers()[li];
      for (std::size_t k = 0; k < lb.grad_weights.size(); ++k)
        EXPECT_NEAR(lb.grad_weights.data()[k], ls.grad_weights.data()[k], 1e-9)
            << "shape " << trial << " layer " << li << " weight " << k;
      for (std::size_t k = 0; k < lb.grad_bias.size(); ++k)
        EXPECT_NEAR(lb.grad_bias[k], ls.grad_bias[k], 1e-9);
    }
  }
}

TEST(Mlp, SaveLoadRoundTrip) {
  Rng rng(9);
  Mlp a({3, 4, 1}, rng);
  Mlp b({3, 4, 1}, rng);  // different init
  std::stringstream buf;
  a.save(buf);
  b.load(buf);
  Vector x{0.2, 0.4, -0.1};
  EXPECT_DOUBLE_EQ(a.evaluate(x)[0], b.evaluate(x)[0]);
}

TEST(Mlp, LoadRejectsShapeMismatch) {
  Rng rng(9);
  Mlp a({3, 4, 1}, rng);
  Mlp b({3, 5, 1}, rng);
  std::stringstream buf;
  a.save(buf);
  EXPECT_THROW(b.load(buf), std::runtime_error);
}

TEST(Adam, MinimizesQuadraticViaMlp) {
  // Train y = w*x toward target 0 from a nonzero start: a pure descent test.
  Rng rng(5);
  Mlp net({1, 1}, rng);  // single linear layer
  AdamOptimizer opt(net, {.learning_rate = 0.05});
  for (int i = 0; i < 500; ++i) {
    double y = net.forward({1.0})[0];
    net.backward({y});  // dL/dy for L = y^2/2
    opt.step();
  }
  EXPECT_NEAR(net.evaluate({1.0})[0], 0.0, 1e-3);
}

TEST(ScalarAdam, DescendsScalar) {
  ScalarAdam opt({.learning_rate = 0.1});
  double x = 5.0;
  for (int i = 0; i < 500; ++i) x -= opt.step(x);  // L = x^2/2
  EXPECT_NEAR(x, 0.0, 1e-3);
}

TEST(Normalizer, ZeroMeanUnitVariance) {
  RunningNormalizer n(1);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) n.update({rng.normal(10.0, 2.0)});
  Vector z = n.normalize({10.0});
  EXPECT_NEAR(z[0], 0.0, 0.1);
  Vector z2 = n.normalize({12.0});
  EXPECT_NEAR(z2[0], 1.0, 0.1);
}

TEST(Normalizer, ClipsExtremes) {
  RunningNormalizer n(1);
  n.update({0.0});
  n.update({1.0});
  Vector z = n.normalize({1e9}, 5.0);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
}

TEST(Normalizer, Validation) {
  EXPECT_THROW(RunningNormalizer(0), std::invalid_argument);
  RunningNormalizer n(2);
  EXPECT_THROW(n.update({1.0}), std::invalid_argument);
}

// Collector normalizers freeze their reference stats while accumulating a
// delta, so concurrent episodes normalize identically; merging the deltas in
// order must equal having streamed every sample through one normalizer.
TEST(Normalizer, DeltaMergeMatchesSerialUpdates) {
  RunningNormalizer serial(2), master(2);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    Vector s{rng.normal(1.0, 2.0), rng.normal(-3.0, 0.5)};
    serial.update(s);
    master.update(s);
  }
  std::vector<Vector> ep1, ep2;
  for (int i = 0; i < 40; ++i) ep1.push_back({rng.normal(), rng.normal(2.0, 3.0)});
  for (int i = 0; i < 25; ++i) ep2.push_back({rng.normal(0.5), rng.normal()});

  for (const Vector& s : ep1) serial.update(s);
  for (const Vector& s : ep2) serial.update(s);

  RunningNormalizer c1 = master, c2 = master;
  c1.begin_delta_collection();
  c2.begin_delta_collection();
  for (const Vector& s : ep1) c1.update(s);
  for (const Vector& s : ep2) c2.update(s);
  master.merge(c1.take_delta());
  master.merge(c2.take_delta());

  EXPECT_EQ(master.count(), serial.count());
  Vector zs = serial.normalize({1.0, 1.0});
  Vector zm = master.normalize({1.0, 1.0});
  EXPECT_NEAR(zm[0], zs[0], 1e-9);
  EXPECT_NEAR(zm[1], zs[1], 1e-9);
}

TEST(Normalizer, DeltaModeNormalizesWithFrozenStats) {
  RunningNormalizer n(1);
  n.update({0.0});
  n.update({2.0});
  Vector before = n.normalize({2.0});
  n.begin_delta_collection();
  n.update({100.0});
  n.update({200.0});
  EXPECT_DOUBLE_EQ(n.normalize({2.0})[0], before[0]);
}

TEST(Normalizer, SaveLoadRoundTrip) {
  RunningNormalizer a(2), b(2);
  a.update({1.0, 2.0});
  a.update({3.0, 4.0});
  std::stringstream buf;
  a.save(buf);
  b.load(buf);
  Vector za = a.normalize({2.0, 3.0});
  Vector zb = b.normalize({2.0, 3.0});
  EXPECT_DOUBLE_EQ(za[0], zb[0]);
  EXPECT_DOUBLE_EQ(za[1], zb[1]);
}

PpoConfig small_ppo(std::size_t dim = 2) {
  PpoConfig cfg;
  cfg.state_dim = dim;
  cfg.hidden = {16, 16};
  cfg.horizon = 128;
  cfg.minibatch = 32;
  cfg.seed = 21;
  return cfg;
}

TEST(Ppo, ActRequiresMatchingDim) {
  PpoAgent agent(small_ppo(2));
  EXPECT_THROW(agent.act({1.0}), std::invalid_argument);
  EXPECT_THROW(agent.act_greedy({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Ppo, RewardWithoutActIsDropped) {
  PpoAgent agent(small_ppo());
  agent.give_reward(1.0);
  EXPECT_EQ(agent.buffered_transitions(), 0u);
}

TEST(Ppo, BuffersTransitions) {
  PpoAgent agent(small_ppo());
  agent.act({0.1, 0.2});
  agent.give_reward(0.5);
  EXPECT_EQ(agent.buffered_transitions(), 1u);
}

TEST(Ppo, UpdatesAfterHorizon) {
  PpoAgent agent(small_ppo());
  for (std::size_t i = 0; i <= agent.config().horizon; ++i) {
    agent.act({0.1, 0.2});
    agent.give_reward(0.0);
  }
  // One more act triggers the update.
  agent.act({0.1, 0.2});
  EXPECT_EQ(agent.update_count(), 1);
  EXPECT_LT(agent.buffered_transitions(), agent.config().horizon);
}

// The core learning test: a 1-D target-chasing task. State = target value;
// reward = -|action - target|. The policy must learn action ~= target.
TEST(Ppo, LearnsStateConditionalTarget) {
  PpoConfig cfg = small_ppo(1);
  cfg.horizon = 256;
  cfg.epochs = 8;
  cfg.actor_lr = 3e-3;
  cfg.critic_lr = 3e-3;
  PpoAgent agent(cfg);
  Rng rng(2);
  for (int step = 0; step < 20000; ++step) {
    double target = rng.chance(0.5) ? 1.0 : -1.0;
    double a = agent.act({target});
    agent.give_reward(-std::abs(a - target));
  }
  EXPECT_NEAR(agent.act_greedy({1.0}), 1.0, 0.35);
  EXPECT_NEAR(agent.act_greedy({-1.0}), -1.0, 0.35);
}

// Same task as LearnsStateConditionalTarget, but through the decoupled
// collect/ingest path (round-based rollout collection with collect_only
// snapshots): the golden-seed run must land in the same reward band.
TEST(Ppo, CollectIngestLearnsTarget) {
  PpoConfig cfg = small_ppo(1);
  cfg.horizon = 256;
  cfg.epochs = 8;
  cfg.actor_lr = 3e-3;
  cfg.critic_lr = 3e-3;
  PpoAgent master(cfg);
  Rng rng(2);
  std::uint64_t collector_seed = 1000;
  for (int round = 0; round < 80; ++round) {
    PpoConfig ccfg = cfg;
    ccfg.seed = collector_seed++;
    ccfg.collect_only = true;
    PpoAgent collector(ccfg);
    collector.copy_parameters_from(master);
    for (int step = 0; step < 250; ++step) {
      double target = rng.chance(0.5) ? 1.0 : -1.0;
      double a = collector.act({target});
      collector.give_reward(-std::abs(a - target));
    }
    master.ingest(collector.take_transitions(/*mark_final_done=*/true));
  }
  EXPECT_GT(master.update_count(), 0);
  EXPECT_NEAR(master.act_greedy({1.0}), 1.0, 0.35);
  EXPECT_NEAR(master.act_greedy({-1.0}), -1.0, 0.35);
}

TEST(Ppo, CollectOnlyNeverUpdates) {
  PpoConfig cfg = small_ppo();
  cfg.collect_only = true;
  PpoAgent agent(cfg);
  for (std::size_t i = 0; i < 3 * cfg.horizon; ++i) {
    agent.act({0.1, 0.2});
    agent.give_reward(0.0);
  }
  EXPECT_EQ(agent.update_count(), 0);
  EXPECT_EQ(agent.buffered_transitions(), 3 * cfg.horizon);
}

TEST(Ppo, TakeTransitionsMarksEpisodeBoundary) {
  PpoConfig cfg = small_ppo();
  cfg.collect_only = true;
  PpoAgent agent(cfg);
  agent.act({0.1, 0.2});
  agent.give_reward(0.5);
  agent.act({0.3, 0.4});
  agent.give_reward(0.25);
  agent.act({0.5, 0.6});  // left half-open: must be dropped
  auto batch = agent.take_transitions(/*mark_final_done=*/true);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch.front().done);
  EXPECT_TRUE(batch.back().done);
  EXPECT_EQ(agent.buffered_transitions(), 0u);
}

TEST(Ppo, SaveLoadRoundTrip) {
  PpoAgent a(small_ppo());
  PpoAgent b(small_ppo());
  // Perturb a's policy via some updates so the two differ.
  for (int i = 0; i < 300; ++i) {
    double act = a.act({0.5, -0.5});
    a.give_reward(-act * act);
  }
  std::stringstream buf;
  a.save(buf);
  b.load(buf);
  EXPECT_DOUBLE_EQ(a.act_greedy({0.3, 0.3}), b.act_greedy({0.3, 0.3}));
  EXPECT_DOUBLE_EQ(a.exploration_stddev(), b.exploration_stddev());
}

TEST(Ppo, MemoryBytesScalesWithWidth) {
  PpoConfig small = small_ppo();
  PpoConfig big = small_ppo();
  big.hidden = {128, 128};
  EXPECT_GT(PpoAgent(big).memory_bytes(), PpoAgent(small).memory_bytes());
}

}  // namespace
}  // namespace libra
