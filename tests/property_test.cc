// Property-based tests of the invariants the paper proves or relies on:
// Appendix A's game-theoretic properties of the utility function, the
// simulator's conservation laws, determinism, and the action-map algebra.
#include <gtest/gtest.h>

#include <cmath>

#include "classic/cubic.h"
#include "classic/newreno.h"
#include "sim/network.h"
#include "stats/fairness.h"
#include "stats/utility_fn.h"
#include "util/rng.h"

namespace libra {
namespace {

// ---------------------------------------------------------------------------
// Appendix A: with 0 < t < 1 and positive coefficients, each sender's utility
// is strictly concave in its own rate. Check the discrete second difference
// over random parameter draws and rates.
class UtilityConcavity : public ::testing::TestWithParam<int> {};

TEST_P(UtilityConcavity, SecondDifferenceNegative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  UtilityParams p;
  p.t = rng.uniform(0.5, 0.99);
  p.alpha = rng.uniform(0.5, 3.0);
  p.beta = rng.uniform(100, 2000);
  p.gamma = rng.uniform(1, 30);
  double grad = rng.uniform(0.0, 0.2);
  double loss = rng.uniform(0.0, 0.2);
  double h = 0.5;
  for (double x = 1.0; x < 100.0; x *= 2.0) {
    double second = utility(p, x + h, grad, loss) - 2 * utility(p, x, grad, loss) +
                    utility(p, x - h, grad, loss);
    EXPECT_LT(second, 0.0) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDraws, UtilityConcavity, ::testing::Range(0, 20));

// Appendix A droptail model: L = 1 - C/S and dRTT/dt = (S-C)/C when S >= C.
// Theorem 4.1: at the symmetric point with S = C, no sender can increase its
// utility by unilateral deviation.
class NashEquilibrium : public ::testing::TestWithParam<int> {};

double droptail_utility(const UtilityParams& p, double xi, double x_others,
                        double capacity) {
  double total = xi + x_others;
  double loss = total >= capacity ? 1.0 - capacity / total : 0.0;
  double grad = total >= capacity ? (total - capacity) / capacity : 0.0;
  return utility(p, xi, grad, loss);
}

TEST_P(NashEquilibrium, UnilateralDeviationNeverWins) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  UtilityParams p;  // paper defaults
  int n = static_cast<int>(rng.uniform_int(2, 8));
  double capacity = rng.uniform(10.0, 100.0);  // Mbps
  double fair = capacity / n;
  double others = fair * (n - 1);

  double u_fair = droptail_utility(p, fair, others, capacity);
  for (double factor : {0.25, 0.5, 0.8, 0.95, 1.05, 1.25, 2.0, 4.0}) {
    double u_dev = droptail_utility(p, fair * factor, others, capacity);
    EXPECT_LE(u_dev, u_fair + 1e-9)
        << "n=" << n << " C=" << capacity << " factor=" << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGames, NashEquilibrium, ::testing::Range(0, 20));

// Lemma A.1: there is no equilibrium with S < C — any sender can raise its
// utility by sending faster while the link is under-utilized.
TEST(NashEquilibrium, NoEquilibriumBelowCapacity) {
  UtilityParams p;
  double capacity = 48.0;
  for (double xi : {1.0, 5.0, 10.0}) {
    double others = 20.0;  // total stays below capacity after the increase
    double u = droptail_utility(p, xi, others, capacity);
    double u_up = droptail_utility(p, xi + 1.0, others, capacity);
    EXPECT_GT(u_up, u) << "xi=" << xi;
  }
}

// ---------------------------------------------------------------------------
// Simulator conservation: packets sent == acked + lost + in flight, for any
// CCA, loss rate, and buffer size.
struct ConservationCase {
  double loss;
  std::int64_t buffer;
  double rate_mbps;
};

class Conservation : public ::testing::TestWithParam<ConservationCase> {};

TEST_P(Conservation, SentEqualsAckedPlusLostPlusInflight) {
  auto param = GetParam();
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(param.rate_mbps));
  cfg.buffer_bytes = param.buffer;
  cfg.propagation_delay = msec(10);
  cfg.stochastic_loss = param.loss;
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<NewReno>());
  net.add_flow(std::make_unique<Cubic>(), msec(500));
  net.run_until(sec(6));
  for (int i = 0; i < net.flow_count(); ++i) {
    const Sender& s = net.flow(i).sender();
    std::int64_t inflight = s.bytes_in_flight() / kDefaultPacketBytes;
    EXPECT_EQ(s.packets_sent(), s.packets_acked() + s.packets_lost() + inflight)
        << "flow " << i;
    EXPECT_GE(s.bytes_in_flight(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Conservation,
    ::testing::Values(ConservationCase{0.0, 150000, 24},
                      ConservationCase{0.02, 150000, 24},
                      ConservationCase{0.10, 30000, 12},
                      ConservationCase{0.0, 8000, 6},
                      ConservationCase{0.05, 1000000, 96}));

// ---------------------------------------------------------------------------
// Determinism: identical seeds => identical runs, across loss rates.
class Determinism : public ::testing::TestWithParam<double> {};

TEST_P(Determinism, IdenticalSeedsIdenticalRuns) {
  auto run = [&] {
    LinkConfig cfg;
    cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
    cfg.buffer_bytes = 100000;
    cfg.propagation_delay = msec(10);
    cfg.stochastic_loss = GetParam();
    cfg.seed = 77;
    Network net(std::move(cfg));
    net.add_flow(std::make_unique<Cubic>());
    net.run_until(sec(5));
    const auto& m = net.flow(0).metrics();
    return std::make_tuple(m.packets_sent, m.packets_acked, m.packets_lost,
                           m.rtt_ms.mean());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(LossGrid, Determinism,
                         ::testing::Values(0.0, 0.01, 0.05, 0.10));

// ---------------------------------------------------------------------------
// Action-map algebra (Sec. 4.2): MIMD maps must be positive, monotone in the
// action, and symmetric (a and -a cancel).
class ActionMap : public ::testing::TestWithParam<double> {};

double mimd_orca(double rate, double a) { return rate * std::exp2(a); }
double mimd_aurora(double rate, double a, double delta = 0.025) {
  return a >= 0 ? rate * (1 + delta * a) : rate / (1 - delta * a);
}

TEST_P(ActionMap, OrcaMapSymmetricAndMonotone) {
  double a = GetParam();
  double rate = mbps(10);
  EXPECT_GT(mimd_orca(rate, a), 0);
  EXPECT_NEAR(mimd_orca(mimd_orca(rate, a), -a), rate, 1e-6);
  if (a > 0) EXPECT_GT(mimd_orca(rate, a), rate);
  if (a < 0) EXPECT_LT(mimd_orca(rate, a), rate);
}

TEST_P(ActionMap, AuroraMapSymmetricAndMonotone) {
  double a = GetParam();
  double rate = mbps(10);
  EXPECT_GT(mimd_aurora(rate, a), 0);
  EXPECT_NEAR(mimd_aurora(mimd_aurora(rate, a), -a), rate, 1.0);
  if (a > 0) EXPECT_GT(mimd_aurora(rate, a), rate);
  if (a < 0) EXPECT_LT(mimd_aurora(rate, a), rate);
}

INSTANTIATE_TEST_SUITE_P(Actions, ActionMap,
                         ::testing::Values(-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0));

TEST(ActionMap, OrcaBandMatchesPaper) {
  // a in [-2, 2] -> multiplier in [1/4, 4] (the paper's footnote 1).
  EXPECT_DOUBLE_EQ(mimd_orca(1.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(mimd_orca(1.0, -2.0), 0.25);
}

// ---------------------------------------------------------------------------
// Jain's index bounds: 1/n <= J <= 1 for any non-degenerate allocation.
class JainBounds : public ::testing::TestWithParam<int> {};

TEST_P(JainBounds, WithinTheoreticalRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  auto n = static_cast<std::size_t>(rng.uniform_int(2, 20));
  std::vector<double> rates(n);
  bool all_zero = true;
  for (double& r : rates) {
    r = rng.uniform(0.0, 100.0);
    all_zero &= r == 0.0;
  }
  if (all_zero) rates[0] = 1.0;
  double j = jain_index(rates);
  EXPECT_GE(j, 1.0 / static_cast<double>(n) - 1e-12);
  EXPECT_LE(j, 1.0 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomAllocations, JainBounds, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Two identical loss-based flows sharing a droptail bottleneck approach a
// fair share (the classic-CCA property Libra inherits).
class ClassicFairness : public ::testing::TestWithParam<double> {};

TEST_P(ClassicFairness, TwoCubicFlowsShareFairly) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(GetParam()));
  cfg.buffer_bytes = 150000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Cubic>());
  net.add_flow(std::make_unique<Cubic>());
  net.run_until(sec(30));
  double a = net.flow(0).throughput_in(sec(10), sec(30));
  double b = net.flow(1).throughput_in(sec(10), sec(30));
  EXPECT_GT(jain_index({a, b}), 0.9) << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Capacities, ClassicFairness,
                         ::testing::Values(12.0, 24.0, 48.0));

}  // namespace
}  // namespace libra
