// Multi-flow training episodes: the learner behind a shared bottleneck with
// competitor flows (CUBIC/BBR/self-play snapshots). Two promises under test:
// the trainer's bitwise thread-count invariance survives competitor sampling
// (every draw, including self-play policy snapshots, happens serially on the
// main thread), and a learner-vs-CUBIC episode produces the multi-flow
// attribution stats (per-flow throughput, Jain fairness) the fairness
// experiments of Sec. 5 train against.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "harness/trainer.h"
#include "learned/libra_rl.h"
#include "util/thread_pool.h"

namespace libra {
namespace {

BrainBoundFactory libra_factory() {
  return [](const std::shared_ptr<RlBrain>& b) {
    return make_libra_rl(b, /*training=*/true);
  };
}

std::shared_ptr<RlBrain> tiny_brain() {
  RlCcaConfig cfg = libra_rl_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, 5, {8, 8}),
                                   feature_frame_size(cfg.features));
}

TEST(MultiFlowTrain, WeightsBitwiseInvariantAcrossThreadCounts) {
  // With competitors enabled — including self-play, whose policy snapshots
  // are seeded from the trainer RNG — the trained brain must still serialize
  // identically at any pool width.
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 50;
  ranges.episode_length = sec(3);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 2;
  ranges.competitors.w_cubic = 1.0;
  ranges.competitors.w_bbr = 1.0;
  ranges.competitors.w_self = 1.0;

  BrainBoundFactory factory = libra_factory();
  auto run = [&](std::size_t threads) {
    auto brain = tiny_brain();
    Trainer trainer(ranges, 77);
    ThreadPool pool(threads);
    auto curve = trainer.train_parallel(factory, brain, /*episodes=*/4, pool,
                                        /*round_size=*/3);
    EXPECT_EQ(curve.size(), 4u);
    for (const EpisodeStats& ep : curve) {
      EXPECT_GE(ep.competitors, 1);
      EXPECT_LE(ep.competitors, 2);
    }
    std::ostringstream out;
    brain->agent.save(out);
    brain->normalizer.save(out);
    return out.str();
  };

  const std::string one_thread = run(1);
  EXPECT_EQ(run(2), one_thread);
  EXPECT_EQ(run(4), one_thread);
}

TEST(MultiFlowTrain, LearnerVersusCubicReportsFairness) {
  // One CUBIC competitor on a friendly fixed link: the episode stats must
  // attribute throughput per flow and land a nontrivial Jain index (2 flows
  // floor at 0.5; an empty-handed learner would sit at the floor).
  TrainEnvRanges ranges;
  ranges.capacity_lo_mbps = ranges.capacity_hi_mbps = 10;
  ranges.rtt_lo = ranges.rtt_hi = msec(40);
  ranges.buffer_lo = ranges.buffer_hi = 150 * 1000;
  ranges.loss_lo = ranges.loss_hi = 0.0;
  ranges.episode_length = sec(6);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 1;
  ranges.competitors.w_cubic = 1.0;
  ranges.competitors.w_bbr = 0.0;
  ranges.competitors.w_self = 0.0;
  ranges.competitors.max_stagger = 0;  // both flows start together

  auto brain = tiny_brain();
  Trainer trainer(ranges, 99);
  ThreadPool pool(2);
  auto curve = trainer.train_parallel(libra_factory(), brain, /*episodes=*/4,
                                      pool, /*round_size=*/4);
  ASSERT_EQ(curve.size(), 4u);
  double best_fairness = 0.0;
  for (const EpisodeStats& ep : curve) {
    EXPECT_EQ(ep.competitors, 1);
    EXPECT_GT(ep.learner_throughput_bps, 0.0);
    // Total includes the competitor, so it strictly exceeds the learner.
    EXPECT_GT(ep.throughput_bps, ep.learner_throughput_bps);
    EXPECT_GT(ep.fairness, 0.0);
    EXPECT_LE(ep.fairness, 1.0);
    best_fairness = std::max(best_fairness, ep.fairness);
  }
  EXPECT_GT(best_fairness, 0.55);
}

TEST(MultiFlowTrain, SoloEpisodesKeepDegenerateStats) {
  // The default mix must reproduce single-flow training: no competitors, a
  // degenerate fairness of 1.0, and learner == total throughput.
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 30;
  ranges.episode_length = sec(2);

  auto brain = tiny_brain();
  Trainer trainer(ranges, 5);
  ThreadPool pool(2);
  auto curve = trainer.train_parallel(libra_factory(), brain, /*episodes=*/2,
                                      pool, /*round_size=*/2);
  ASSERT_EQ(curve.size(), 2u);
  for (const EpisodeStats& ep : curve) {
    EXPECT_EQ(ep.competitors, 0);
    EXPECT_DOUBLE_EQ(ep.fairness, 1.0);
    EXPECT_DOUBLE_EQ(ep.learner_throughput_bps, ep.throughput_bps);
  }
}

TEST(MultiFlowTrain, AlwaysOnDutyDrawsNothingSoLegacyStreamsAreBitIdentical) {
  // duty_on == 1.0 must consume zero RNG draws, so a mix that merely *sets*
  // the duty-cycle period knobs (without enabling cycling) trains to exactly
  // the same weights as one that never touched them.
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 50;
  ranges.episode_length = sec(3);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 2;

  auto run = [&](TrainEnvRanges r) {
    auto brain = tiny_brain();
    Trainer trainer(r, 77);
    ThreadPool pool(2);
    trainer.train_parallel(libra_factory(), brain, /*episodes=*/4, pool,
                           /*round_size=*/3);
    std::ostringstream out;
    brain->agent.save(out);
    brain->normalizer.save(out);
    return out.str();
  };

  const std::string legacy = run(ranges);
  TrainEnvRanges touched = ranges;
  touched.competitors.duty_on = 1.0;  // explicit always-on
  touched.competitors.period_lo = msec(250);
  touched.competitors.period_hi = sec(4);
  EXPECT_EQ(run(touched), legacy);
}

TEST(MultiFlowTrain, DutyCycledTrainingIsThreadInvariantAndDiffersFromAlwaysOn) {
  // 50% duty cycling draws its periods on the serial trainer stream, so the
  // weights stay bitwise thread-count invariant — while genuinely changing
  // what the learner experiences (and therefore what it learns).
  TrainEnvRanges ranges;
  ranges.capacity_hi_mbps = 50;
  ranges.episode_length = sec(3);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 2;
  ranges.competitors.duty_on = 0.5;
  ranges.competitors.period_lo = msec(500);
  ranges.competitors.period_hi = sec(1);

  auto run = [&](const TrainEnvRanges& r, std::size_t threads) {
    auto brain = tiny_brain();
    Trainer trainer(r, 77);
    ThreadPool pool(threads);
    auto curve = trainer.train_parallel(libra_factory(), brain, /*episodes=*/4,
                                        pool, /*round_size=*/3);
    EXPECT_EQ(curve.size(), 4u);
    std::ostringstream out;
    brain->agent.save(out);
    brain->normalizer.save(out);
    return out.str();
  };

  const std::string duty_one_thread = run(ranges, 1);
  EXPECT_EQ(run(ranges, 2), duty_one_thread);
  EXPECT_EQ(run(ranges, 4), duty_one_thread);

  TrainEnvRanges continuous = ranges;
  continuous.competitors.duty_on = 1.0;
  EXPECT_NE(run(continuous, 2), duty_one_thread);
}

TEST(MultiFlowTrain, BadDutyCycleConfigIsRejected) {
  TrainEnvRanges ranges;
  ranges.episode_length = sec(1);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 1;
  ranges.competitors.w_bbr = 0.0;
  ranges.competitors.w_self = 0.0;

  auto attempt = [&](double duty, SimDuration lo, SimDuration hi) {
    TrainEnvRanges r = ranges;
    r.competitors.duty_on = duty;
    r.competitors.period_lo = lo;
    r.competitors.period_hi = hi;
    auto brain = tiny_brain();
    Trainer trainer(r, 3);
    CcaFactory make = [&brain] {
      return make_libra_rl(brain, /*training=*/true);
    };
    trainer.train(make, 1);
  };
  EXPECT_THROW(attempt(0.0, sec(1), sec(2)), std::invalid_argument);
  EXPECT_THROW(attempt(-0.5, sec(1), sec(2)), std::invalid_argument);
  EXPECT_THROW(attempt(1.5, sec(1), sec(2)), std::invalid_argument);
  EXPECT_THROW(attempt(0.5, sec(2), sec(1)), std::invalid_argument);
  EXPECT_THROW(attempt(0.5, 0, sec(1)), std::invalid_argument);
}

TEST(MultiFlowTrain, SerialSelfPlayIsRejected) {
  // The serial path holds no brain handle to snapshot, so drawing a self-play
  // competitor there must fail loudly instead of silently training solo.
  TrainEnvRanges ranges;
  ranges.episode_length = sec(1);
  ranges.competitors.min_flows = 1;
  ranges.competitors.max_flows = 1;
  ranges.competitors.w_cubic = 0.0;
  ranges.competitors.w_bbr = 0.0;
  ranges.competitors.w_self = 1.0;

  auto brain = tiny_brain();
  Trainer trainer(ranges, 3);
  CcaFactory make = [&brain] { return make_libra_rl(brain, /*training=*/true); };
  EXPECT_THROW(trainer.train(make, 1), std::invalid_argument);
}

}  // namespace
}  // namespace libra
