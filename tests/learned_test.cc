#include <gtest/gtest.h>

#include "learned/aurora.h"
#include "learned/indigo.h"
#include "learned/libra_rl.h"
#include "learned/monitor.h"
#include "learned/orca.h"
#include "learned/remy.h"
#include "learned/rl_cca.h"
#include "learned/vivace.h"
#include "sim/network.h"

namespace libra {
namespace {

constexpr std::int64_t kMss = kDefaultPacketBytes;

AckEvent ack_at(SimTime now, std::uint64_t seq, SimDuration rtt = msec(50),
                SimDuration min_rtt = msec(50), RateBps delivery = mbps(10)) {
  return AckEvent{now, seq, now - rtt, rtt, kMss, 0, delivery, min_rtt};
}

TEST(MiCollector, ThroughputOverInterval) {
  MiCollector c;
  c.finish(0);  // open interval at t=0
  for (int i = 1; i <= 10; ++i) c.on_ack(ack_at(msec(10) * i, static_cast<std::uint64_t>(i)));
  MiReport r = c.finish(msec(100));
  // 10 * 1500 B over 100 ms = 1.2 Mbps.
  EXPECT_NEAR(r.throughput_bps, mbps(1.2), 1e3);
  EXPECT_EQ(r.acks, 10);
}

TEST(MiCollector, LossRate) {
  MiCollector c;
  c.finish(0);
  for (int i = 0; i < 8; ++i) c.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  c.on_loss({msec(9), 8, 0, kMss, 0, false});
  c.on_loss({msec(10), 9, 0, kMss, 0, false});
  MiReport r = c.finish(msec(20));
  EXPECT_DOUBLE_EQ(r.loss_rate, 0.2);
}

TEST(MiCollector, RttGradientExact) {
  MiCollector c;
  c.finish(0);
  // RTT climbing 1 ms per 10 ms: slope 0.1.
  for (int i = 0; i < 10; ++i)
    c.on_ack(ack_at(msec(10) * i, static_cast<std::uint64_t>(i), msec(50) + msec(i)));
  MiReport r = c.finish(msec(100));
  EXPECT_NEAR(r.rtt_gradient, 0.1, 1e-6);
}

TEST(MiCollector, GapEwmasPersistAcrossIntervals) {
  MiCollector c;
  c.finish(0);
  c.on_ack(ack_at(msec(10), 0));
  c.on_ack(ack_at(msec(20), 1));
  MiReport r1 = c.finish(msec(30));
  EXPECT_NEAR(r1.ack_gap_ewma_s, 0.010, 1e-9);
  MiReport r2 = c.finish(msec(40));  // empty interval
  EXPECT_NEAR(r2.ack_gap_ewma_s, 0.010, 1e-9);
}

TEST(MiCollector, SentAckedRatio) {
  MiCollector c;
  c.finish(0);
  for (int i = 0; i < 4; ++i) c.on_send({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
  c.on_ack(ack_at(msec(10), 0));
  c.on_ack(ack_at(msec(11), 1));
  MiReport r = c.finish(msec(20));
  EXPECT_DOUBLE_EQ(r.sent_acked_ratio, 2.0);
}

TEST(StateSpace, FrameSizes) {
  EXPECT_EQ(feature_frame_size(libra_state_space()), 4u);
  EXPECT_EQ(feature_frame_size(baseline_state_space()), 6u);  // (vi) is 2-wide
  EXPECT_EQ(feature_frame_size({StateFeature::kRttAndMinRtt}), 2u);
}

TEST(StateSpace, LibraUsesPaperCombination) {
  auto s = libra_state_space();
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], StateFeature::kSendRate);        // (iv)
  EXPECT_EQ(s[1], StateFeature::kLossRate);        // (vii)
  EXPECT_EQ(s[2], StateFeature::kRttGradient);     // (viii)
  EXPECT_EQ(s[3], StateFeature::kDeliveryRate);    // (ix)
}

std::shared_ptr<RlBrain> tiny_brain(const RlCcaConfig& cfg, std::uint64_t seed = 3) {
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed, {8, 8}),
                                   feature_frame_size(cfg.features));
}

TEST(RlCca, RejectsMismatchedBrain) {
  RlCcaConfig a = libra_rl_config();
  RlCcaConfig b = aurora_config();
  auto brain = tiny_brain(a);
  EXPECT_THROW(RlCca(b, brain), std::invalid_argument);
}

TEST(RlCca, ActionModeMath) {
  // Drive the action maps directly through force_rate + a known action by
  // using tiny deterministic configs in greedy mode and checking clamps.
  RlCcaConfig cfg = libra_rl_config();
  cfg.min_rate = mbps(1);
  cfg.max_rate = mbps(10);
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  cca.force_rate(mbps(100));  // must clamp
  EXPECT_DOUBLE_EQ(cca.current_rate(), mbps(10));
  cca.force_rate(mbps(0.1));
  EXPECT_DOUBLE_EQ(cca.current_rate(), mbps(1));
}

TEST(RlCca, ExternalControlHoldsRateWithoutAcks) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.external_control = true;
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  cca.external_begin(0, mbps(5));
  EXPECT_DOUBLE_EQ(cca.current_rate(), mbps(5));
  // No acks during the interval: decision must hold the rate (Sec. 3).
  EXPECT_DOUBLE_EQ(cca.external_decide(msec(100)), mbps(5));
}

TEST(RlCca, ExternalDecideUsesAgentAfterFeedback) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.external_control = true;
  cfg.training = false;
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  cca.external_begin(0, mbps(5));
  for (int i = 0; i < 10; ++i) cca.on_ack(ack_at(msec(10) * (i + 1), static_cast<std::uint64_t>(i)));
  RateBps decided = cca.external_decide(msec(120));
  // MIMD 2^a with a in [-2, 2]: decided rate within [5/4, 5*4] Mbps.
  EXPECT_GE(decided, mbps(5) / 4.0);
  EXPECT_LE(decided, mbps(5) * 4.0);
}

TEST(RlCca, ExternalControlDisablesAutoMi) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.external_control = true;
  cfg.training = false;
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  cca.external_begin(0, mbps(5));
  for (int i = 0; i < 50; ++i) {
    cca.on_ack(ack_at(msec(20) * (i + 1), static_cast<std::uint64_t>(i)));
    cca.on_tick(msec(20) * (i + 1));
  }
  // Rate untouched until external_decide is called.
  EXPECT_DOUBLE_EQ(cca.current_rate(), mbps(5));
}

TEST(RlCca, AutoMiAdjustsRate) {
  RlCcaConfig cfg = libra_rl_config();
  // Training mode: sampled actions guarantee movement (a greedy untrained
  // policy outputs ~0, i.e. the identity multiplier).
  cfg.training = true;
  cfg.mi_duration = msec(20);
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  RateBps initial = cca.current_rate();
  SimTime t = 0;
  bool changed = false;
  for (int i = 0; i < 100; ++i) {
    t += msec(10);
    cca.on_ack(ack_at(t, static_cast<std::uint64_t>(i)));
    cca.on_tick(t);
    if (cca.current_rate() != initial) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(RlCca, CwndCapsInflightAtTwoBdp) {
  RlCcaConfig cfg = libra_rl_config();
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  EXPECT_EQ(cca.cwnd_bytes(), kInfiniteCwnd);  // no RTT estimate yet
  cca.on_ack(ack_at(msec(50), 0, msec(100), msec(100)));
  cca.force_rate(mbps(8));
  // 2 * (8 Mbps * 100 ms) = 200 KB.
  EXPECT_NEAR(static_cast<double>(cca.cwnd_bytes()), 200e3, 20e3);
}

TEST(RlCca, EpisodeMetricsAccumulate) {
  RlCcaConfig cfg = libra_rl_config();
  cfg.mi_duration = msec(20);
  auto brain = tiny_brain(cfg);
  RlCca cca(cfg, brain);
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t += msec(10);
    cca.on_ack(ack_at(t, static_cast<std::uint64_t>(i)));
    cca.on_tick(t);
  }
  EXPECT_GT(cca.episode_steps(), 0);
  cca.reset_episode_metrics();
  EXPECT_EQ(cca.episode_steps(), 0);
}

TEST(BatchedPolicyEval, BitwiseMatchesPerStateGreedy) {
  // The batched path (normalize_into + forward_batch) must agree bit-for-bit
  // with normalize + act_greedy per state — it's a faster route to the same
  // decisions, not a different policy.
  RlCcaConfig cfg = libra_rl_config();
  auto brain = tiny_brain(cfg, 21);
  const std::size_t dim = brain->agent.config().state_dim;
  // Give the normalizer real statistics so normalization is nontrivial.
  Rng rng(22);
  for (int i = 0; i < 50; ++i) {
    Vector frame(brain->normalizer.dim());
    for (double& v : frame) v = rng.uniform(-3.0, 3.0);
    brain->normalizer.update(frame);
  }
  std::vector<Vector> raw(37, Vector(dim));
  for (Vector& s : raw)
    for (double& v : s) v = rng.uniform(-5.0, 5.0);

  // Small max_batch forces the chunking path (37 = 2 full chunks + remainder).
  BatchedPolicyEval eval(brain, /*max_batch=*/16);
  Vector batched;
  eval.evaluate(raw, batched);
  ASSERT_EQ(batched.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    // Per-state reference path: the frame-wise normalizer applied across the
    // stacked history, then the greedy actor.
    Vector normalized(dim);
    const std::size_t frame = brain->normalizer.dim();
    for (std::size_t off = 0; off < dim; off += frame) {
      Vector f(raw[i].begin() + off, raw[i].begin() + off + frame);
      Vector nf = brain->normalizer.normalize(f);
      std::copy(nf.begin(), nf.end(), normalized.begin() + off);
    }
    EXPECT_EQ(brain->agent.act_greedy(normalized), batched[i]) << "state " << i;
  }
}

TEST(BatchedPolicyEval, RejectsBadStateDim) {
  auto brain = tiny_brain(libra_rl_config(), 23);
  BatchedPolicyEval eval(brain, 8);
  Vector out;
  EXPECT_THROW(eval.evaluate({Vector(3, 0.0)}, out), std::invalid_argument);
}

TEST(BrainIo, SaveLoadRoundTrip) {
  RlCcaConfig cfg = libra_rl_config();
  auto a = tiny_brain(cfg, 5);
  auto b = tiny_brain(cfg, 6);
  std::string path = ::testing::TempDir() + "/test.brain";
  save_brain(*a, path);
  ASSERT_TRUE(load_brain(*b, path));
  Vector state(make_ppo_config(cfg, 0, {8, 8}).state_dim, 0.1);
  EXPECT_DOUBLE_EQ(a->agent.act_greedy(state), b->agent.act_greedy(state));
}

TEST(BrainIo, LoadMissingReturnsFalse) {
  auto b = tiny_brain(libra_rl_config());
  EXPECT_FALSE(load_brain(*b, "/nonexistent/path.brain"));
}

TEST(Vivace, StartupDoublesUntilUtilityDrops) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 100 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Vivace>());
  net.run_until(sec(15));
  EXPECT_GT(net.link_utilization(sec(5), sec(15)), 0.75);
  EXPECT_LT(net.flow(0).metrics().loss_rate(), 0.05);
}

TEST(Vivace, TracksCapacityDrop) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{{0, mbps(24)}, {sec(12), mbps(8)}});
  cfg.buffer_bytes = 100 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Vivace>());
  net.run_until(sec(30));
  double late = net.flow(0).throughput_in(sec(22), sec(30));
  EXPECT_LT(late, mbps(9.5));
  EXPECT_GT(late, mbps(5));
}

TEST(Proteus, IsMoreLatencyAverseThanVivace) {
  VivaceParams v, p = proteus_params();
  EXPECT_GT(p.utility.beta, v.utility.beta);
  EXPECT_LT(p.max_step_fraction, v.max_step_fraction);
}

TEST(Remy, CollapsesUnderHeavyQueueing) {
  Remy cc;
  // Feed low-RTT acks -> grows.
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t += msec(10);
    cc.on_ack(ack_at(t, static_cast<std::uint64_t>(i)));
  }
  std::int64_t grown = cc.cwnd_bytes();
  // Heavy queueing: rtt_ratio 2.5 -> collapse rule.
  for (int i = 0; i < 50; ++i) {
    t += msec(10);
    cc.on_ack(ack_at(t, 100 + static_cast<std::uint64_t>(i), msec(125), msec(50)));
  }
  EXPECT_LT(cc.cwnd_bytes(), grown);
}

TEST(Indigo, RampsWhileQueueEmptyThenSettles) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 150 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<Indigo>());
  net.run_until(sec(20));
  double util = net.link_utilization(sec(8), sec(20));
  // Indigo's signature: solid but deliberately under-utilized equilibrium.
  EXPECT_GT(util, 0.5);
  EXPECT_LT(util, 0.99);
}

TEST(Orca, AppliesMultiplierToCubicWindow) {
  OrcaParams params;
  params.decision_period = msec(50);
  params.training = false;
  auto brain = make_orca_brain(7);
  Orca orca(params, brain);
  std::int64_t w0 = orca.cwnd_bytes();
  SimTime t = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    t += msec(10);
    orca.on_packet_sent({t, seq, kMss, 10 * kMss});
    orca.on_ack(ack_at(t, seq));
    orca.on_tick(t);
    ++seq;
  }
  // CUBIC slow start + periodic 2^a overrides: the window must have moved,
  // and stays within the [1/4, 4]x band of CUBIC-reachable values.
  EXPECT_NE(orca.cwnd_bytes(), w0);
  EXPECT_GE(orca.cwnd_bytes(), 2 * kMss);
}

TEST(Orca, EndToEndFillsLink) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 150 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));
  auto brain = make_orca_brain(7);
  OrcaParams params;
  params.training = false;
  net.add_flow(std::make_unique<Orca>(params, brain));
  net.run_until(sec(20));
  EXPECT_GT(net.link_utilization(sec(5), sec(20)), 0.6);
}

TEST(ModifiedRl, ConfigAppliesEq1Reward) {
  RlCcaConfig cfg = modified_rl_config();
  EXPECT_TRUE(cfg.reward_is_eq1_utility);
  EXPECT_EQ(cfg.reward_mode, RewardMode::kAbsolute);
}

TEST(AuroraConfig, MatchesPublishedFormulation) {
  RlCcaConfig cfg = aurora_config();
  EXPECT_EQ(cfg.action_mode, ActionMode::kMimdAurora);
  EXPECT_DOUBLE_EQ(cfg.aurora_delta, 0.025);
  EXPECT_EQ(cfg.reward_mode, RewardMode::kAbsolute);
  EXPECT_EQ(cfg.history, 10u);
}

}  // namespace
}  // namespace libra
