#include <gtest/gtest.h>

#include "stats/cdf.h"
#include "stats/convergence.h"
#include "stats/fairness.h"
#include "stats/overhead.h"
#include "stats/summary.h"
#include "stats/timeseries.h"
#include "stats/utility_fn.h"

namespace libra {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.range(), 7.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Percentile, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(Percentile, Validation) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Jain, PerfectFairness) {
  EXPECT_DOUBLE_EQ(jain_index({10, 10, 10}), 1.0);
}

TEST(Jain, TotalUnfairness) {
  // One flow hogging: index -> 1/n.
  EXPECT_NEAR(jain_index({100, 0, 0, 0}), 0.25, 1e-9);
}

TEST(Jain, IntermediateValue) {
  EXPECT_NEAR(jain_index({30, 10}), 0.8, 1e-9);
}

TEST(Jain, Validation) {
  EXPECT_THROW(jain_index({}), std::invalid_argument);
  EXPECT_THROW(jain_index({-1.0}), std::invalid_argument);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
}

TEST(Cdf, FractionBelowAndQuantile) {
  Cdf c;
  for (double v : {1.0, 2.0, 3.0, 4.0}) c.add(v);
  EXPECT_DOUBLE_EQ(c.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 4.0);
}

TEST(Cdf, Validation) {
  Cdf c;
  EXPECT_THROW(c.fraction_below(1.0), std::logic_error);
  c.add(1.0);
  EXPECT_THROW(c.quantile(1.5), std::invalid_argument);
}

TEST(TimeSeries, SumAndMeanInWindow) {
  TimeSeries ts;
  ts.add(msec(10), 100);
  ts.add(msec(20), 200);
  ts.add(msec(30), 300);
  EXPECT_DOUBLE_EQ(ts.sum_in(msec(10), msec(30)), 300);
  EXPECT_DOUBLE_EQ(ts.mean_in(msec(10), msec(31)), 200);
  EXPECT_DOUBLE_EQ(ts.mean_in(sec(1), sec(2)), 0);
}

TEST(TimeSeries, RateBins) {
  TimeSeries ts;
  // 1250 bytes at t=50ms -> bin 0 carries 10 kbit over 100ms = 100 kbps.
  ts.add(msec(50), 1250);
  auto bins = ts.to_rate_bins(msec(100), msec(300));
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_NEAR(bins[0], 100e3, 1.0);
  EXPECT_DOUBLE_EQ(bins[1], 0.0);
}

TEST(TimeSeries, RateBinsIgnoreOutOfHorizon) {
  TimeSeries ts;
  ts.add(sec(10), 1500);
  auto bins = ts.to_rate_bins(msec(100), sec(1));
  for (double b : bins) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Convergence, DetectsStableSignal) {
  // 2s of ramp then stable at 100 for the rest; bin = 500ms, hold = 5s.
  std::vector<double> bins;
  for (int i = 0; i < 4; ++i) bins.push_back(10.0 + i * 20);
  for (int i = 0; i < 16; ++i) bins.push_back(100.0);
  auto res = analyze_convergence(bins, msec(500));
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.convergence_time, sec(2));
  EXPECT_NEAR(res.mean_after, 100.0, 1e-9);
  EXPECT_NEAR(res.stddev_after, 0.0, 1e-9);
}

TEST(Convergence, RejectsOscillation) {
  std::vector<double> bins;
  for (int i = 0; i < 20; ++i) bins.push_back(i % 2 ? 150.0 : 50.0);
  auto res = analyze_convergence(bins, msec(500));
  EXPECT_FALSE(res.converged);
}

TEST(Convergence, ToleratesBandedNoise) {
  std::vector<double> bins;
  for (int i = 0; i < 20; ++i) bins.push_back(i % 2 ? 110.0 : 95.0);  // within 25%
  auto res = analyze_convergence(bins, msec(500));
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.convergence_time, 0);
}

TEST(Convergence, EmptyInput) {
  EXPECT_FALSE(analyze_convergence({}, msec(500)).converged);
}

TEST(OverheadMeter, AccumulatesScopes) {
  OverheadMeter m;
  {
    OverheadMeter::Scope s(m);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink += i;
  }
  EXPECT_GT(m.busy_nanoseconds(), 0);
  EXPECT_EQ(m.invocations(), 1);
  EXPECT_GT(m.cpu_per_sim_second(sec(1)), 0.0);
  m.reset();
  EXPECT_EQ(m.busy_nanoseconds(), 0);
}

TEST(UtilityFn, RewardsThroughput) {
  UtilityParams p;
  EXPECT_GT(utility(p, 20, 0, 0), utility(p, 10, 0, 0));
}

TEST(UtilityFn, PenalizesRttGradient) {
  UtilityParams p;
  EXPECT_LT(utility(p, 10, 0.1, 0), utility(p, 10, 0.0, 0));
  // Negative gradient (draining queue) is not rewarded, per the max(0, .).
  EXPECT_DOUBLE_EQ(utility(p, 10, -0.5, 0), utility(p, 10, 0.0, 0));
}

TEST(UtilityFn, PenalizesLoss) {
  UtilityParams p;
  EXPECT_LT(utility(p, 10, 0, 0.05), utility(p, 10, 0, 0.0));
}

TEST(UtilityFn, DefaultsMatchPaper) {
  UtilityParams p;
  EXPECT_DOUBLE_EQ(p.t, 0.9);
  EXPECT_DOUBLE_EQ(p.alpha, 1.0);
  EXPECT_DOUBLE_EQ(p.beta, 900.0);
  EXPECT_DOUBLE_EQ(p.gamma, 11.35);
}

TEST(UtilityFn, PreferencePresets) {
  EXPECT_DOUBLE_EQ(throughput_oriented(1).alpha, 2.0);
  EXPECT_DOUBLE_EQ(throughput_oriented(2).alpha, 3.0);
  EXPECT_DOUBLE_EQ(latency_oriented(1).beta, 1800.0);
  EXPECT_DOUBLE_EQ(latency_oriented(2).beta, 2700.0);
}

TEST(UtilityFn, Validation) {
  UtilityParams p;
  p.t = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = UtilityParams{};
  p.beta = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_THROW(utility({}, -1, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace libra
