#include <gtest/gtest.h>

#include <sstream>

#include "classic/newreno.h"
#include "harness/metered.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/trainer.h"
#include "harness/zoo.h"
#include "learned/libra_rl.h"

namespace libra {
namespace {

TEST(Scenario, WiredBuildsConstantTrace) {
  Scenario s = wired_scenario(48);
  auto t = s.make_trace(1);
  EXPECT_DOUBLE_EQ(t->rate_at(sec(5)), mbps(48));
  EXPECT_DOUBLE_EQ(s.nominal_rate, mbps(48));
  LinkConfig cfg = s.link_config(1);
  EXPECT_EQ(cfg.propagation_delay, msec(15));
}

TEST(Scenario, LteTraceVariesWithSeed) {
  Scenario s = lte_scenario(LteProfile::kDriving, "lte-driving");
  auto a = s.make_trace(1);
  auto b = s.make_trace(2);
  bool differ = false;
  for (SimTime at = 0; at < sec(20); at += msec(500))
    differ |= a->rate_at(at) != b->rate_at(at);
  EXPECT_TRUE(differ);
}

TEST(Scenario, StepScenarioMatchesFig2a) {
  Scenario s = step_scenario();
  EXPECT_EQ(s.min_rtt, msec(80));
  auto t = s.make_trace(1);
  // Capacity changes at the 10 s boundary.
  EXPECT_NE(t->rate_at(sec(5)), t->rate_at(sec(15)));
  // Includes the 5 Mbps level that breaks Orca's training range.
  bool has_5mbps = false;
  for (int k = 0; k < 5; ++k)
    has_5mbps |= t->rate_at(sec(10 * k + 5)) == mbps(5);
  EXPECT_TRUE(has_5mbps);
}

TEST(Scenario, CanonicalSetsHaveExpectedSizes) {
  EXPECT_EQ(fig1_scenarios().size(), 6u);
  EXPECT_EQ(wired_set().size(), 4u);
  EXPECT_EQ(cellular_set().size(), 4u);
}

TEST(Scenario, WanProfilesDiffer) {
  Scenario inter = wan_inter_continental();
  Scenario intra = wan_intra_continental();
  EXPECT_GT(inter.min_rtt, intra.min_rtt);
  EXPECT_GT(inter.stochastic_loss, intra.stochastic_loss);
}

TEST(Scenario, ExtensionProfiles) {
  EXPECT_GE(satellite_scenario().min_rtt, msec(500));
  EXPECT_GT(satellite_scenario().stochastic_loss, 0.01);
  EXPECT_EQ(fiveg_scenario().name, "5g");
}

TEST(Runner, SingleFlowSummary) {
  Scenario s = wired_scenario(24);
  s.duration = sec(8);
  RunSummary sum = run_single(s, [] { return std::make_unique<NewReno>(); }, 1);
  EXPECT_GT(sum.link_utilization, 0.8);
  EXPECT_GT(sum.total_throughput_bps, mbps(18));
  ASSERT_EQ(sum.flows.size(), 1u);
  EXPECT_GT(sum.flows[0].avg_rtt_ms, 29.0);
}

TEST(Runner, RejectsEmptyFlows) {
  Scenario s = wired_scenario(24);
  EXPECT_THROW(run_scenario(s, {}, 1), std::invalid_argument);
}

TEST(Runner, MultiFlowSummaries) {
  Scenario s = wired_scenario(24);
  s.duration = sec(10);
  auto net = run_scenario(
      s,
      {{[] { return std::make_unique<NewReno>(); }, 0},
       {[] { return std::make_unique<NewReno>(); }, sec(2)}},
      1);
  RunSummary sum = summarize(*net, sec(4), sec(10));
  ASSERT_EQ(sum.flows.size(), 2u);
  EXPECT_GT(sum.flows[0].throughput_bps, 0);
  EXPECT_GT(sum.flows[1].throughput_bps, 0);
}

TEST(Trainer, EpisodeProducesMetrics) {
  auto brain = make_libra_rl_brain(3);
  Trainer trainer({}, 5);
  EpisodeStats ep = trainer.run_episode([&] { return make_libra_rl(brain, true); });
  EXPECT_GT(ep.steps, 0);
  EXPECT_GT(ep.throughput_bps, 0);
}

TEST(Trainer, RewardExtractorHandlesNonRl) {
  NewReno cc;
  EXPECT_FALSE(episode_reward_of(cc).has_value());
}

TEST(Trainer, CurveHasRequestedLength) {
  auto brain = make_libra_rl_brain(4);
  TrainEnvRanges ranges;
  ranges.episode_length = sec(2);
  Trainer trainer(ranges, 6);
  auto curve = trainer.train([&] { return make_libra_rl(brain, true); }, 5);
  EXPECT_EQ(curve.size(), 5u);
}

TEST(Zoo, AllNamesConstructible) {
  // Classic + online-learning CCAs need no brain; construct them all.
  ZooConfig cfg;
  cfg.brain_dir = "";  // no cache in tests
  cfg.train_episodes = 1;
  CcaZoo zoo(cfg);
  for (const auto& name : CcaZoo::all_names()) {
    auto cca = zoo.factory(name)();
    ASSERT_NE(cca, nullptr) << name;
    EXPECT_FALSE(cca->name().empty());
  }
}

TEST(Zoo, UnknownNameThrows) {
  CcaZoo zoo;
  EXPECT_THROW(zoo.factory("nope"), std::out_of_range);
  EXPECT_THROW(zoo.brain("nope"), std::out_of_range);
}

TEST(Zoo, BrainsAreCachedPerFamily) {
  ZooConfig cfg;
  cfg.brain_dir = "";
  cfg.train_episodes = 1;
  CcaZoo zoo(cfg);
  EXPECT_EQ(zoo.brain("libra-rl").get(), zoo.brain("libra-rl").get());
}

TEST(Metered, AttributesTime) {
  auto meter = std::make_shared<OverheadMeter>();
  MeteredCca metered(std::make_unique<NewReno>(), meter);
  metered.on_ack({msec(10), 0, 0, msec(10), 1500, 0, 0, msec(10)});
  metered.on_tick(msec(20));
  EXPECT_EQ(meter->invocations(), 2);
  EXPECT_EQ(metered.name(), "newreno");
  EXPECT_GT(metered.cwnd_bytes(), 0);
}

TEST(Report, FormattersAndTable) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.876), "87.6%");
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print(out);
  std::string s = out.str();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

}  // namespace
}  // namespace libra
