#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/stats_window.h"
#include "classic/newreno.h"

namespace libra {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(msec(30), [&] { order.push_back(3); });
  q.schedule_at(msec(10), [&] { order.push_back(1); });
  q.schedule_at(msec(20), [&] { order.push_back(2); });
  q.run_until(msec(100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), msec(100));
}

TEST(EventQueue, SameTimeFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.schedule_at(msec(10), [&order, i] { order.push_back(i); });
  q.run_until(msec(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(msec(1), [&] {
    ++fired;
    q.schedule_in(msec(1), [&] { ++fired; });
  });
  q.run_until(msec(5));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RejectsPast) {
  EventQueue q;
  q.schedule_at(msec(10), [] {});
  q.run_until(msec(20));
  EXPECT_THROW(q.schedule_at(msec(5), [] {}), std::invalid_argument);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, SameTimeFifoAcrossManyEventsAndHeapGrowth) {
  // Enough events to force several storage growths mid-stream; insertion
  // order must survive the heap's internal moves.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 500; ++i)
    q.schedule_at(msec(10), [&order, i] { order.push_back(i); });
  q.run_until(msec(10));
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, SchedulingFromInsideCallbackAtCurrentInstant) {
  // An event scheduled for "now" from inside a callback runs within the same
  // run_until, after every previously scheduled same-time event.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(msec(10), [&] {
    order.push_back(0);
    q.schedule_at(msec(10), [&] { order.push_back(2); });
  });
  q.schedule_at(msec(10), [&] { order.push_back(1); });
  q.run_until(msec(10));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.now(), msec(10));
}

TEST(EventQueue, RunUntilAdvancesClockPastLastEvent) {
  EventQueue q;
  q.schedule_at(msec(3), [] {});
  q.run_until(msec(50));
  EXPECT_EQ(q.now(), msec(50));
  q.run_until(msec(50));  // idempotent
  EXPECT_EQ(q.now(), msec(50));
  q.run_until(msec(40));  // never moves backwards
  EXPECT_EQ(q.now(), msec(50));
}

TEST(EventQueue, RunUntilLeavesLaterEventsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(msec(10), [&] { ++fired; });
  q.schedule_at(msec(30), [&] { ++fired; });
  q.run_until(msec(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), msec(20));
  q.run_until(msec(30));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CountsProcessedEvents) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(msec(i), [] {});
  q.run_until(msec(3));
  EXPECT_EQ(q.processed(), 4u);  // t = 0,1,2,3
  q.run_until(msec(10));
  EXPECT_EQ(q.processed(), 7u);
}

TEST(EventQueue, LargeCaptureCallback) {
  // A capture bigger than the inline buffer takes the heap fallback; behavior
  // must be unchanged.
  EventQueue q;
  std::array<double, 32> payload{};
  payload[31] = 42.0;
  double seen = 0;
  q.schedule_at(msec(1), [payload, &seen] { seen = payload[31]; });
  q.run_until(msec(1));
  EXPECT_EQ(seen, 42.0);
}

TEST(EventQueue, MoveOnlyCaptureCallback) {
  EventQueue q;
  auto value = std::make_unique<int>(99);
  int seen = 0;
  q.schedule_at(msec(1), [v = std::move(value), &seen] { seen = *v; });
  q.run_until(msec(1));
  EXPECT_EQ(seen, 99);
}

TEST(EventQueue, RoutesClosuresToHotAndColdSlotPools) {
  // Small (timer-like) closures land in the 24-byte hot pool; a fat capture
  // goes to the cold pool. Ordering and behavior are pool-independent.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(msec(1), [&order] { order.push_back(1); });  // hot: one pointer
  std::array<double, 8> payload{};
  payload[7] = 2.0;
  q.schedule_at(msec(2), [&order, payload] {  // 72 bytes: cold pool
    order.push_back(static_cast<int>(payload[7]));
  });
  EXPECT_EQ(q.hot_slot_count(), 1u);
  EXPECT_EQ(q.cold_slot_count(), 1u);
  q.run_until(msec(2));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, HotSlotsAreRecycled) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    q.schedule_at(msec(i), [&fired] { ++fired; });
    q.run_until(msec(i));
  }
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(q.hot_slot_count(), 1u);  // one slot, reused 100 times
  EXPECT_EQ(q.cold_slot_count(), 0u);
}

TEST(EventQueue, DestroysUnrunCallbacks) {
  // Pending events dropped with the queue must release their captures.
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    EventQueue q;
    q.schedule_at(msec(5), [t = std::move(token)] { (void)t; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

LinkConfig test_link(RateBps rate = mbps(12), std::int64_t buffer = 15000,
                     double loss = 0.0) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(rate);
  cfg.buffer_bytes = buffer;
  cfg.propagation_delay = msec(10);
  cfg.stochastic_loss = loss;
  return cfg;
}

TEST(DropTailLink, SerializationPlusPropagation) {
  EventQueue q;
  DropTailLink link(q, test_link(mbps(12)));
  SimTime delivered_at = -1;
  link.set_deliver([&](const Packet&) { delivered_at = q.now(); });
  Packet p;
  p.bytes = 1500;
  link.send(p);
  q.run_until(sec(1));
  // 1 ms serialization + 10 ms propagation.
  EXPECT_EQ(delivered_at, msec(11));
}

TEST(DropTailLink, QueueingDelaysBackToBack) {
  EventQueue q;
  DropTailLink link(q, test_link(mbps(12)));
  std::vector<SimTime> deliveries;
  link.set_deliver([&](const Packet&) { deliveries.push_back(q.now()); });
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.bytes = 1500;
    p.seq = static_cast<std::uint64_t>(i);
    link.send(p);
  }
  q.run_until(sec(1));
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], msec(11));
  EXPECT_EQ(deliveries[1], msec(12));  // spaced by serialization time
  EXPECT_EQ(deliveries[2], msec(13));
}

TEST(DropTailLink, TailDropsWhenFull) {
  EventQueue q;
  // Buffer of 3000 bytes = 2 packets.
  DropTailLink link(q, test_link(mbps(12), 3000));
  int drops = 0, delivered = 0;
  link.set_drop([&](const Packet&) { ++drops; });
  link.set_deliver([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.bytes = 1500;
    link.send(p);
  }
  // 2 fit in the buffer; the rest tail-drop (transmission begins only when
  // the event loop runs, so nothing has drained yet).
  EXPECT_EQ(drops, 3);
  q.run_until(sec(1));
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.delivered_bytes(), 3000);
}

TEST(DropTailLink, EcnMarksEctPacketsAboveThreshold) {
  EventQueue q;
  // K = 3000 bytes (2 packets): arrivals that find >= 2 packets queued are
  // CE-marked; non-ECT packets pass unmarked regardless.
  LinkConfig cfg = test_link(mbps(12), 100'000);
  cfg.ecn_threshold_bytes = 3000;
  DropTailLink link(q, cfg);
  std::vector<bool> ce;
  link.set_deliver([&](const Packet& p) { ce.push_back(p.ce_marked); });
  for (int i = 0; i < 6; ++i) {
    Packet p;
    p.bytes = 1500;
    p.seq = static_cast<std::uint64_t>(i);
    p.ecn_capable = (i != 5);  // last packet is non-ECT
    link.send(p);
  }
  q.run_until(sec(1));
  ASSERT_EQ(ce.size(), 6u);
  // Packets 0 and 1 saw a queue below K; 2-4 saw >= 3000 bytes queued and
  // are marked; packet 5 also saw a full queue but is not ECT.
  EXPECT_EQ(ce, (std::vector<bool>{false, false, true, true, true, false}));
  EXPECT_EQ(link.ecn_marks(), 3);
  EXPECT_EQ(link.drops_overflow(), 0);
}

TEST(DropTailLink, EcnDisabledNeverMarks) {
  EventQueue q;
  DropTailLink link(q, test_link(mbps(12), 100'000));  // threshold 0 = off
  int marked = 0, delivered = 0;
  link.set_deliver([&](const Packet& p) {
    ++delivered;
    if (p.ce_marked) ++marked;
  });
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.bytes = 1500;
    p.ecn_capable = true;
    link.send(p);
  }
  q.run_until(sec(1));
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(marked, 0);
  EXPECT_EQ(link.ecn_marks(), 0);
}

TEST(DropTailLink, PolicerPassesBurstThenEnforcesRate) {
  // Token-bucket conformance: a burst up to the bucket passes untouched,
  // then a sustained overload is clipped to the token rate.
  EventQueue q;
  LinkConfig cfg = test_link(mbps(100), 10'000'000);
  cfg.policer_rate = mbps(10);             // 1250 bytes/ms refill
  cfg.policer_burst_bytes = 15'000;        // 10-packet bucket, starts full
  DropTailLink link(q, cfg);
  int delivered = 0;
  link.set_deliver([&](const Packet&) { ++delivered; });
  // Instantaneous burst of 20 packets: exactly the 10 in the bucket conform.
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.bytes = 1500;
    p.seq = static_cast<std::uint64_t>(i);
    link.send(p);
  }
  EXPECT_EQ(link.drops_policer(), 10);
  // Steady state: offer 2 packets/ms (24 Mbps) for one second. The bucket is
  // empty, so conformance is the refill rate: 10 Mbps = 833.3 packets/s.
  q.run_until(msec(1));
  std::int64_t burst_drops = link.drops_policer();
  for (int i = 0; i < 2000; ++i) {
    Packet p;
    p.bytes = 1500;
    p.seq = static_cast<std::uint64_t>(100 + i);
    link.send(p);
    if (i % 2 == 1) q.run_until(q.now() + 1000);  // +1 ms every 2 packets
  }
  const std::int64_t steady_passed =
      2000 - (link.drops_policer() - burst_drops);
  // 10 Mbps over 1 s = 1.25 MB = 833 packets (±1 for bucket rounding).
  EXPECT_NEAR(static_cast<double>(steady_passed), 833.0, 2.0);
  q.run_until(sec(5));
  EXPECT_EQ(delivered, 10 + static_cast<int>(steady_passed));
}

TEST(DropTailLink, PolicerMarksInsteadOfDroppingWhenConfigured) {
  EventQueue q;
  LinkConfig cfg = test_link(mbps(100), 10'000'000);
  cfg.policer_rate = mbps(10);
  cfg.policer_burst_bytes = 15'000;
  cfg.policer_marks = true;
  DropTailLink link(q, cfg);
  int ce = 0, clean = 0;
  link.set_deliver([&](const Packet& p) { p.ce_marked ? ++ce : ++clean; });
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.bytes = 1500;
    p.ecn_capable = true;
    link.send(p);
  }
  q.run_until(sec(1));
  // The 10 bucket-conformant packets pass clean; the rest are CE-marked and
  // forwarded rather than dropped.
  EXPECT_EQ(clean, 10);
  EXPECT_EQ(ce, 10);
  EXPECT_EQ(link.policer_marks(), 10);
  EXPECT_EQ(link.drops_policer(), 0);
}

TEST(DropTailLink, PolicerActiveWindowGatesEnforcement) {
  EventQueue q;
  LinkConfig cfg = test_link(mbps(100), 10'000'000);
  cfg.policer_rate = mbps(10);
  cfg.policer_burst_bytes = 1500;  // 1-packet bucket: every burst is clipped
  cfg.policer_start = msec(100);
  cfg.policer_stop = msec(200);
  DropTailLink link(q, cfg);
  link.set_deliver([](const Packet&) {});
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Packet p;
      p.bytes = 1500;
      link.send(p);
    }
  };
  burst(5);  // before the window: untouched
  EXPECT_EQ(link.drops_policer(), 0);
  q.run_until(msec(150));
  burst(5);  // inside: 1 conforms (fresh bucket), 4 drop
  EXPECT_EQ(link.drops_policer(), 4);
  q.run_until(msec(250));
  burst(5);  // after the window: untouched again
  EXPECT_EQ(link.drops_policer(), 4);
}

TEST(DropTailLink, StochasticLossApproximatesRate) {
  EventQueue q;
  DropTailLink link(q, test_link(mbps(1000), 1 << 30, 0.2));
  int drops = 0, delivered = 0;
  link.set_drop([&](const Packet&) { ++drops; });
  link.set_deliver([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 5000; ++i) {
    Packet p;
    p.bytes = 100;
    link.send(p);
    q.run_until(q.now() + 10);
  }
  q.run_until(sec(10));
  EXPECT_NEAR(static_cast<double>(drops) / 5000.0, 0.2, 0.03);
}

TEST(DropTailLink, TimeVaryingCapacity) {
  EventQueue q;
  LinkConfig cfg;
  cfg.capacity = std::make_unique<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{{0, mbps(12)}, {msec(100), mbps(1.2)}});
  cfg.buffer_bytes = 1 << 20;
  cfg.propagation_delay = 0;
  DropTailLink link(q, std::move(cfg));
  std::vector<SimTime> deliveries;
  link.set_deliver([&](const Packet&) { deliveries.push_back(q.now()); });

  Packet p;
  p.bytes = 1500;
  link.send(p);
  q.run_until(msec(50));
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], msec(1));  // 1 ms at 12 Mbps

  q.run_until(msec(200));
  link.send(p);
  q.run_until(sec(1));
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[1], msec(200) + msec(10));  // 10 ms at 1.2 Mbps
}

TEST(DropTailLink, Validation) {
  EventQueue q;
  LinkConfig cfg;
  EXPECT_THROW(DropTailLink(q, std::move(cfg)), std::invalid_argument);
}

TEST(StatsWindow, AttributesBySendTime) {
  StatsWindow w(msec(10), msec(20), mbps(5));
  AckEvent inside{msec(100), 1, msec(15), msec(30), 1500, 0, 0, msec(30)};
  AckEvent outside{msec(100), 2, msec(25), msec(30), 1500, 0, 0, msec(30)};
  w.on_ack(inside);
  w.on_ack(outside);
  EXPECT_EQ(w.acks(), 1);
}

TEST(StatsWindow, ThroughputFromAckSpan) {
  StatsWindow w(0, msec(10), mbps(5));
  // Two acks 1 ms apart, 1500 bytes each: second ack's bytes over 1 ms span.
  w.on_ack({msec(20), 1, msec(1), msec(19), 1500, 0, 0, msec(19)});
  w.on_ack({msec(21), 2, msec(2), msec(19), 1500, 0, 0, msec(19)});
  EXPECT_NEAR(w.throughput_bps(), mbps(24), mbps(0.1));
}

TEST(StatsWindow, LossRate) {
  StatsWindow w(0, msec(10), mbps(5));
  w.on_ack({msec(20), 1, msec(1), msec(19), 1500, 0, 0, msec(19)});
  LossEvent l{msec(25), 2, msec(2), 1500, 0, false};
  w.on_loss(l);
  EXPECT_DOUBLE_EQ(w.loss_rate(), 0.5);
}

TEST(StatsWindow, RttGradientSlope) {
  StatsWindow w(0, msec(100), mbps(5));
  // RTT rising 10 ms per 100 ms of time: slope 0.1.
  for (int i = 0; i < 5; ++i) {
    SimTime t = msec(10) * (i + 1);
    w.on_ack({t, static_cast<std::uint64_t>(i), msec(1) * i,
              msec(20) + t / 10, 1500, 0, 0, msec(20)});
  }
  EXPECT_NEAR(w.rtt_gradient(), 0.1, 1e-6);
}

TEST(StatsWindow, CloseShrinksSendWindow) {
  StatsWindow w(0, msec(100), mbps(5));
  w.close(msec(50));
  EXPECT_FALSE(w.covers(msec(60)));
  EXPECT_TRUE(w.covers(msec(40)));
}

TEST(Network, SingleNewRenoFlowFillsLink) {
  LinkConfig cfg = test_link(mbps(12), 30000);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<NewReno>());
  net.run_until(sec(10));
  EXPECT_GT(net.link_utilization(sec(2), sec(10)), 0.9);
  const Flow& f = net.flow(0);
  EXPECT_GT(f.metrics().packets_acked, 1000);
}

TEST(Network, ConservationOfPackets) {
  Network net(test_link(mbps(12), 15000, 0.01));
  net.add_flow(std::make_unique<NewReno>());
  net.run_until(sec(5));
  const Sender& s = net.flow(0).sender();
  std::int64_t inflight_pkts = s.bytes_in_flight() / kDefaultPacketBytes;
  EXPECT_EQ(s.packets_sent(), s.packets_acked() + s.packets_lost() + inflight_pkts);
}

TEST(Network, DeterministicForSeed) {
  auto run = [] {
    Network net(test_link(mbps(12), 15000, 0.02));
    net.add_flow(std::make_unique<NewReno>());
    net.run_until(sec(5));
    return net.flow(0).metrics().packets_acked;
  };
  EXPECT_EQ(run(), run());
}

TEST(Network, StaggeredFlowsStartAndStop) {
  Network net(test_link(mbps(12), 30000));
  net.add_flow(std::make_unique<NewReno>(), sec(0), sec(4));
  net.add_flow(std::make_unique<NewReno>(), sec(2), kSimTimeMax);
  net.run_until(sec(8));
  const Flow& first = net.flow(0);
  const Flow& second = net.flow(1);
  // First flow stops at 4 s: no acked bytes attributable past ~4.2 s.
  EXPECT_DOUBLE_EQ(first.acked_bytes_series().sum_in(sec(5), sec(8)), 0.0);
  // Second flow owns the link afterwards.
  EXPECT_GT(second.throughput_in(sec(5), sec(8)), mbps(9));
}

TEST(Network, HeterogeneousRttViaAckDelay) {
  Network net(test_link(mbps(12), 60000));
  net.add_flow(std::make_unique<NewReno>(), 0, kSimTimeMax, msec(40));
  net.run_until(sec(5));
  // min RTT = 10 (fwd) + 10 + 40 (ack path) = 60 ms.
  EXPECT_GE(net.flow(0).sender().min_rtt(), msec(60));
}

TEST(Network, AddFlowAfterStartThrows) {
  Network net(test_link());
  net.add_flow(std::make_unique<NewReno>());
  net.run_until(msec(1));
  EXPECT_THROW(net.add_flow(std::make_unique<NewReno>()), std::logic_error);
}

TEST(Sender, RtoFiresOnBlackout) {
  // A link whose capacity dies after 200 ms: outstanding packets must be
  // declared lost by the RTO so in-flight drains and the CCA learns.
  LinkConfig cfg;
  cfg.capacity = std::make_unique<PiecewiseTrace>(
      std::vector<PiecewiseTrace::Segment>{{0, mbps(12)}, {msec(200), 0.0}});
  cfg.buffer_bytes = 1 << 20;
  cfg.propagation_delay = msec(10);
  Network net(std::move(cfg));
  net.add_flow(std::make_unique<NewReno>());
  net.run_until(sec(5));
  EXPECT_GT(net.flow(0).metrics().packets_lost, 0);
  EXPECT_LT(net.flow(0).sender().bytes_in_flight(), 400 * kDefaultPacketBytes);
}

}  // namespace
}  // namespace libra
