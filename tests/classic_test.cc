#include <gtest/gtest.h>

#include <cmath>

#include "classic/bbr.h"
#include "classic/copa.h"
#include "classic/cubic.h"
#include "classic/dctcp.h"
#include "classic/illinois.h"
#include "classic/newreno.h"
#include "classic/sprout_ewma.h"
#include "classic/vegas.h"
#include "classic/westwood.h"
#include "sim/network.h"

namespace libra {
namespace {

constexpr std::int64_t kMss = kDefaultPacketBytes;

AckEvent ack_at(SimTime now, std::uint64_t seq, SimDuration rtt = msec(50),
                SimDuration min_rtt = msec(50), RateBps delivery = mbps(10)) {
  return AckEvent{now, seq, now - rtt, rtt, kMss, 0, delivery, min_rtt};
}

LossEvent loss_at(SimTime now, std::uint64_t seq, bool timeout = false) {
  return LossEvent{now, seq, now - msec(50), kMss, 0, timeout};
}

TEST(LossEpoch, OnePerFlight) {
  LossEpochTracker t;
  t.on_sent(100);
  EXPECT_TRUE(t.should_react(50));
  EXPECT_FALSE(t.should_react(80));   // same flight
  EXPECT_FALSE(t.should_react(100));  // boundary belongs to the old flight
  t.on_sent(200);
  EXPECT_TRUE(t.should_react(150));   // new flight
}

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewReno cc;
  std::int64_t before = cc.cwnd_bytes();
  // One ACK per outstanding packet: +1 MSS each.
  for (int i = 0; i < 10; ++i) cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  EXPECT_EQ(cc.cwnd_bytes(), before + 10 * kMss);
}

TEST(NewReno, HalvesOnLoss) {
  NewReno cc;
  for (int i = 0; i < 20; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  std::int64_t before = cc.cwnd_bytes();
  cc.on_loss(loss_at(msec(30), 10));
  EXPECT_EQ(cc.cwnd_bytes(), std::max<std::int64_t>(before / 2, 2 * kMss));
}

TEST(NewReno, SecondLossSameFlightIgnored) {
  NewReno cc;
  for (int i = 0; i < 20; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  cc.on_loss(loss_at(msec(30), 10));
  std::int64_t after_first = cc.cwnd_bytes();
  cc.on_loss(loss_at(msec(31), 12));
  EXPECT_EQ(cc.cwnd_bytes(), after_first);
}

TEST(NewReno, TimeoutCollapsesToOneMss) {
  NewReno cc;
  for (int i = 0; i < 20; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  cc.on_loss(loss_at(msec(30), 10, /*timeout=*/true));
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

TEST(Cubic, SlowStartThenMultiplicativeDecrease) {
  Cubic cc;
  std::int64_t initial = cc.cwnd_bytes();
  for (int i = 0; i < 10; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(cc.cwnd_bytes(), initial + 10 * kMss);
  std::int64_t before = cc.cwnd_bytes();
  cc.on_loss(loss_at(msec(20), 5));
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
}

TEST(Cubic, WindowFollowsCubicCurveAfterLoss) {
  // After a reduction, the window must regrow toward w_max along a cubic in
  // time: slower near w_max (plateau), then accelerating past it.
  Cubic cc;
  for (int i = 0; i < 60; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  cc.on_loss(loss_at(msec(100), 30));
  double w_max = cc.w_max_packets();
  EXPECT_GT(w_max, 0);

  // Feed steady ACKs for simulated seconds and track growth.
  std::uint64_t seq = 100;
  SimTime t = msec(200);
  auto grow = [&](SimDuration span) {
    std::int64_t start = cc.cwnd_bytes();
    SimTime end = t + span;
    while (t < end) {
      cc.on_packet_sent({t, seq, kMss, 0});
      cc.on_ack(ack_at(t, seq));
      ++seq;
      t += msec(10);
    }
    return cc.cwnd_bytes() - start;
  };
  std::int64_t early = grow(sec(2));   // approaching the plateau
  std::int64_t late = grow(sec(6));    // past K: convex growth resumes
  EXPECT_GT(late, early);
  // And the plateau is near w_max.
  EXPECT_GT(static_cast<double>(cc.cwnd_bytes()) / kMss, w_max);
}

TEST(Cubic, FastConvergenceShrinksWmax) {
  Cubic cc;
  for (int i = 0; i < 40; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
  }
  cc.on_loss(loss_at(msec(50), 20));
  double first_wmax = cc.w_max_packets();
  // Second loss at a smaller window: fast convergence sets w_max below cwnd.
  cc.on_packet_sent({msec(60), 100, kMss, 0});
  cc.on_loss(loss_at(msec(70), 100));
  EXPECT_LT(cc.w_max_packets(), first_wmax);
}

TEST(Cubic, SetCwndKeepsSlowStartCapability) {
  Cubic cc;
  cc.set_cwnd_bytes(20 * kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 20 * kMss);
  // No loss yet: ssthresh is still infinite, so growth is slow-start fast.
  cc.on_ack(ack_at(msec(1), 1));
  EXPECT_EQ(cc.cwnd_bytes(), 21 * kMss);
}

TEST(Cubic, SetCwndFloorsAtTwoMss) {
  Cubic cc;
  cc.set_cwnd_bytes(0);
  EXPECT_EQ(cc.cwnd_bytes(), 2 * kMss);
}

TEST(Bbr, StartupReachesProbeBwOnPlateau) {
  Bbr bbr;
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  // Feed rounds with a flat 10 Mbps delivery rate; after 3 flat rounds BBR
  // must declare full bandwidth, drain, then cycle PROBE_BW.
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 10; ++i) {
      bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
      AckEvent ev = ack_at(t, seq, msec(50), msec(50), mbps(10));
      ev.bytes_in_flight = (round > 4) ? 4 * kMss : 10 * kMss;  // drained later
      bbr.on_ack(ev);
      ++seq;
      t += msec(5);
    }
  }
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  EXPECT_NEAR(bbr.bottleneck_bw(), mbps(10), mbps(0.5));
}

TEST(Bbr, PacingFollowsGainTimesBandwidth) {
  Bbr bbr;
  std::uint64_t seq = 0;
  SimTime t = 0;
  // Two flat-bandwidth acks: full-bw detection needs 3 flat rounds, so BBR is
  // still in STARTUP with pacing = 2.885 x 10 Mbps.
  for (int i = 0; i < 2; ++i) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(50), msec(50), mbps(10)));
    ++seq;
    t += msec(5);
  }
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kStartup);
  EXPECT_NEAR(bbr.pacing_rate(), 2.885 * mbps(10), mbps(0.5));
}

TEST(Bbr, CwndIsGainTimesBdp) {
  Bbr bbr;
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(100), msec(100), mbps(12)));
    ++seq;
    t += msec(5);
  }
  // BDP = 12 Mbps * 100 ms = 150 KB; cwnd_gain 2 -> 300 KB.
  EXPECT_NEAR(static_cast<double>(bbr.cwnd_bytes()), 300e3, 15e3);
}

TEST(Bbr, ProbeRttAfterMinRttExpiry) {
  BbrParams params;
  params.min_rtt_window = msec(500);  // shrink for the test
  Bbr bbr(params);
  std::uint64_t seq = 0;
  SimTime t = 0;
  // RTT never dips below 50 ms again; after the window expires ProbeRTT fires.
  bool saw_probe_rtt = false;
  for (int i = 0; i < 400; ++i) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(60), msec(50), mbps(10)));
    if (bbr.mode() == Bbr::Mode::kProbeRtt) saw_probe_rtt = true;
    ++seq;
    t += msec(5);
  }
  EXPECT_TRUE(saw_probe_rtt);
}

TEST(Bbr, ProbeRttShrinksCwnd) {
  BbrParams params;
  params.min_rtt_window = msec(200);
  Bbr bbr(params);
  std::uint64_t seq = 0;
  SimTime t = 0;
  while (bbr.mode() != Bbr::Mode::kProbeRtt && t < sec(5)) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(60), msec(50), mbps(10)));
    ++seq;
    t += msec(5);
  }
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  EXPECT_EQ(bbr.cwnd_bytes(), 4 * kMss);
}

// Drives a BBR into PROBE_RTT and returns the time just after entry.
SimTime drive_to_probe_rtt(Bbr& bbr, std::uint64_t& seq, SimTime t) {
  while (bbr.mode() != Bbr::Mode::kProbeRtt && t < sec(5)) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(60), msec(50), mbps(10)));
    ++seq;
    t += msec(5);
  }
  return t;
}

TEST(Bbr, ProbeRttExitsOnTickWithoutAcks) {
  // Regression: the ACK-silent exit path. If the connection goes quiet while
  // in PROBE_RTT (outage, app-limited lull), the dwell timer alone must end
  // the probe — previously only the tick path checked probe_rtt_done_ with
  // its own guard, and the two copies could drift.
  BbrParams params;
  params.min_rtt_window = msec(200);
  Bbr bbr(params);
  std::uint64_t seq = 0;
  SimTime t = drive_to_probe_rtt(bbr, seq, 0);
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  // No ACKs from here on: ticks alone must exit once the 200 ms dwell passes.
  bbr.on_tick(t + msec(100));
  EXPECT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);  // dwell not yet served
  bbr.on_tick(t + params.probe_rtt_duration + msec(50));
  EXPECT_NE(bbr.mode(), Bbr::Mode::kProbeRtt);
}

TEST(Bbr, ProbeRttExitsOnAck) {
  // The ACK path must exit through the same consolidated logic.
  BbrParams params;
  params.min_rtt_window = msec(200);
  Bbr bbr(params);
  std::uint64_t seq = 0;
  SimTime t = drive_to_probe_rtt(bbr, seq, 0);
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeRtt);
  t += params.probe_rtt_duration + msec(50);
  bbr.on_packet_sent({t, seq, kMss, 2 * kMss});
  bbr.on_ack(ack_at(t, seq, msec(50), msec(50), mbps(10)));
  EXPECT_NE(bbr.mode(), Bbr::Mode::kProbeRtt);
}

TEST(Bbr, IgnoresIndividualLosses) {
  Bbr bbr;
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (int i = 0; i < 5; ++i) {
    bbr.on_packet_sent({t, seq, kMss, 10 * kMss});
    bbr.on_ack(ack_at(t, seq, msec(50), msec(50), mbps(10)));
    ++seq;
    t += msec(5);
  }
  RateBps before = bbr.pacing_rate();
  bbr.on_loss(loss_at(t, 2));
  EXPECT_DOUBLE_EQ(bbr.pacing_rate(), before);
}

// Runs one policed "round" against a Bbr: a flight of `n` packets at time t,
// half delivered at `delivery`, half lost — the steady signature of a
// token-bucket policer (loss fraction 0.5 >= lt_loss_thresh).
void policed_round(Bbr& bbr, std::uint64_t& seq, SimTime t, RateBps delivery) {
  const std::uint64_t base = seq;
  for (int i = 0; i < 10; ++i) bbr.on_packet_sent({t, seq++, kMss, 10 * kMss});
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t s = base + static_cast<std::uint64_t>(i);
    if (i % 2 == 1) {
      bbr.on_loss(loss_at(t + msec(20), s));
    } else {
      bbr.on_ack(ack_at(t + msec(20), s, msec(20), msec(20), delivery));
    }
  }
}

TEST(Bbr, LtBwEngagesWithinTwoIntervalsOfPolicerOnset) {
  // Two agreeing 4-round intervals is the minimum evidence the long-term
  // estimator needs, so it must pin within 8-9 rounds of the first loss.
  Bbr bbr;
  std::uint64_t seq = 0;
  SimTime t = 0;
  int rounds_to_engage = -1;
  for (int round = 0; round < 12; ++round) {
    policed_round(bbr, seq, t, mbps(10));
    t += msec(20);
    if (bbr.lt_use_bw()) {
      rounds_to_engage = round + 1;
      break;
    }
  }
  ASSERT_GT(rounds_to_engage, 0) << "lt_bw never engaged";
  EXPECT_LE(rounds_to_engage, 9);
  // Pinned: pacing is exactly lt_bw, the gain cycle is bypassed. The rate is
  // the *delivered goodput* (5 x 1500 B per 20 ms = 3 Mbps), not the probe.
  EXPECT_NEAR(bbr.lt_bw(), mbps(3), mbps(0.5));
  EXPECT_DOUBLE_EQ(bbr.pacing_rate(), static_cast<double>(bbr.lt_bw()));
}

TEST(Bbr, LtBwExpiresAndReprobesAfterMaxRtts) {
  Bbr bbr;
  std::uint64_t seq = 0;
  SimTime t = 0;
  for (int round = 0; round < 12 && !bbr.lt_use_bw(); ++round) {
    policed_round(bbr, seq, t, mbps(10));
    t += msec(20);
  }
  ASSERT_TRUE(bbr.lt_use_bw());
  ASSERT_EQ(bbr.mode(), Bbr::Mode::kProbeBw);
  // Clean rounds from here: after lt_bw_max_rtts round starts the model must
  // forget the policer and resume probing with the gain cycle.
  for (int round = 0; round < BbrParams{}.lt_bw_max_rtts + 2; ++round) {
    const std::uint64_t base = seq;
    for (int i = 0; i < 10; ++i)
      bbr.on_packet_sent({t, seq++, kMss, 10 * kMss});
    for (int i = 0; i < 10; ++i)
      bbr.on_ack(ack_at(t + msec(20), base + static_cast<std::uint64_t>(i),
                        msec(20), msec(20), mbps(10)));
    t += msec(20);
  }
  EXPECT_FALSE(bbr.lt_use_bw());
}

TEST(Vegas, HoldsWindowInsideAlphaBetaBand) {
  Vegas cc;
  // Feed RTT = min RTT (empty queue) and let slow start run: window grows.
  std::int64_t start = cc.cwnd_bytes();
  for (int i = 0; i < 30; ++i)
    cc.on_ack(ack_at(msec(10) * i, static_cast<std::uint64_t>(i)));
  EXPECT_GT(cc.cwnd_bytes(), start);
}

TEST(Vegas, BacksOffWhenQueueDeep) {
  Vegas cc;
  // First build a large window.
  for (int i = 0; i < 50; ++i)
    cc.on_ack(ack_at(msec(10) * i, static_cast<std::uint64_t>(i)));
  std::int64_t grown = cc.cwnd_bytes();
  // Now RTT inflates to 3x min: diff >> beta -> shrink once per RTT.
  SimTime t = sec(10);
  for (int i = 0; i < 40; ++i) {
    cc.on_ack(ack_at(t, 100 + static_cast<std::uint64_t>(i), msec(150), msec(50)));
    t += msec(160);
  }
  EXPECT_LT(cc.cwnd_bytes(), grown);
}

TEST(Westwood, LossSetsWindowToMeasuredBdp) {
  Westwood cc;
  // Steady 8 Mbps delivery at 50 ms min RTT -> BDP = 50 KB.
  for (int i = 0; i < 100; ++i) {
    cc.on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i), msec(50), msec(50), mbps(8)));
  }
  cc.on_loss(loss_at(msec(200), 50));
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 50e3, 10e3);
}

TEST(Illinois, AlphaShrinksWithDelay) {
  Illinois low_delay, high_delay;
  // Drive both past slow start with one loss.
  for (auto* cc : {&low_delay, &high_delay}) {
    for (int i = 0; i < 30; ++i) {
      cc->on_packet_sent({msec(i), static_cast<std::uint64_t>(i), kMss, 0});
      cc->on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i)));
    }
    cc->on_loss(loss_at(msec(50), 15));
  }
  std::int64_t base_low = low_delay.cwnd_bytes();
  std::int64_t base_high = high_delay.cwnd_bytes();
  // low_delay sees empty queue; high_delay sees an inflated RTT with a known
  // larger max RTT (so d_frac is meaningfully large).
  for (int i = 0; i < 60; ++i) {
    low_delay.on_ack(ack_at(sec(1) + msec(i), 100 + static_cast<std::uint64_t>(i),
                            msec(50), msec(50)));
    high_delay.on_ack(ack_at(sec(1) + msec(i), 100 + static_cast<std::uint64_t>(i),
                             msec(200), msec(50)));
  }
  std::int64_t gain_low = low_delay.cwnd_bytes() - base_low;
  std::int64_t gain_high = high_delay.cwnd_bytes() - base_high;
  EXPECT_GT(gain_low, gain_high);
}

TEST(Dctcp, AlphaConvergesToCeFraction) {
  // Fixed marking pattern: 3 of every 10 ACKs carry CE. The per-window EWMA
  // (g = 1/16) must converge from its kernel-style initial 1.0 to the true
  // CE fraction.
  Dctcp cc;
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
  SimTime t = 0;
  std::uint64_t seq = 0;
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t base = seq;
    for (int i = 0; i < 10; ++i) cc.on_packet_sent({t, seq++, kMss, 0});
    for (int i = 0; i < 10; ++i) {
      AckEvent a = ack_at(t + msec(10), base + static_cast<std::uint64_t>(i));
      a.ecn_ce = i < 3;
      cc.on_ack(a);
    }
    t += msec(20);
  }
  EXPECT_NEAR(cc.alpha(), 0.3, 0.02);

  // The pattern goes clean: alpha must decay toward zero.
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t base = seq;
    for (int i = 0; i < 10; ++i) cc.on_packet_sent({t, seq++, kMss, 0});
    for (int i = 0; i < 10; ++i)
      cc.on_ack(ack_at(t + msec(10), base + static_cast<std::uint64_t>(i)));
    t += msec(20);
  }
  EXPECT_LT(cc.alpha(), 0.01);
}

TEST(Dctcp, CeReactionAtMostOncePerWindow) {
  Dctcp cc;
  std::uint64_t seq = 0;
  for (int i = 0; i < 10; ++i) cc.on_packet_sent({0, seq++, kMss, 0});
  const std::int64_t before = cc.cwnd_bytes();
  AckEvent a = ack_at(msec(10), 0);
  a.ecn_ce = true;
  cc.on_ack(a);
  // alpha is still 1.0 on the first mark: the full classic halving.
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
  const std::int64_t after_first = cc.cwnd_bytes();
  AckEvent b = ack_at(msec(11), 1);
  b.ecn_ce = true;
  cc.on_ack(b);
  // Same flight: no second cut — just the normal sub-MSS avoidance growth.
  EXPECT_GE(cc.cwnd_bytes(), after_first);
  EXPECT_LT(cc.cwnd_bytes(), after_first + kMss);
  // A CE mark on data from the next flight re-arms the reaction.
  for (int i = 0; i < 5; ++i) cc.on_packet_sent({msec(12), seq++, kMss, 0});
  const std::int64_t before2 = cc.cwnd_bytes();
  AckEvent c = ack_at(msec(20), 10);
  c.ecn_ce = true;
  cc.on_ack(c);
  EXPECT_LT(cc.cwnd_bytes(), before2);
}

TEST(Dctcp, LossStillMeansLoss) {
  // The alpha machinery only softens ECN-signalled congestion; a real loss
  // falls back to the classic halving (and slow-start exit).
  Dctcp cc;
  std::uint64_t seq = 0;
  for (int i = 0; i < 20; ++i) {
    cc.on_packet_sent({msec(i), seq, kMss, 0});
    cc.on_ack(ack_at(msec(i) + msec(5), seq));
    ++seq;
  }
  const std::int64_t grown = cc.cwnd_bytes();
  cc.on_loss(loss_at(msec(40), seq - 1));
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()),
              static_cast<double>(grown) / 2.0, static_cast<double>(kMss));
}

TEST(Copa, GrowsOnEmptyQueue) {
  Copa cc;
  std::int64_t start = cc.cwnd_bytes();
  for (int i = 0; i < 40; ++i)
    cc.on_ack(ack_at(msec(20) * i, static_cast<std::uint64_t>(i)));
  EXPECT_GT(cc.cwnd_bytes(), start);
}

TEST(Copa, ShrinksWhenAboveTarget) {
  Copa cc;
  for (int i = 0; i < 60; ++i)
    cc.on_ack(ack_at(msec(20) * i, static_cast<std::uint64_t>(i)));
  std::int64_t grown = cc.cwnd_bytes();
  // Standing queue of 100 ms: target rate = 1/(0.5*0.1) = 20 pkts/s, tiny.
  // Phase 2 follows phase 1 after a 200 ms pause: long enough that the
  // standing-RTT filter (100 ms window) sees only the inflated RTT — so the
  // first ACK flips the direction and resets phase 1's accumulated velocity
  // — yet short enough that Copa's windowed min-RTT baseline (min_rtt_window,
  // default 2 s) still holds the true 50 ms floor. After a longer idle gap
  // the window would re-seed from the inflated RTT instead.
  SimTime t = msec(20) * 60 + msec(200);
  for (int i = 0; i < 60; ++i) {
    cc.on_ack(ack_at(t, 200 + static_cast<std::uint64_t>(i), msec(150), msec(50)));
    t += msec(20);
  }
  EXPECT_LT(cc.cwnd_bytes(), grown);
}

TEST(SproutEwma, PacesNearForecastWhenQueueAtTarget) {
  SproutEwma cc;
  for (int i = 0; i < 50; ++i)
    cc.on_ack(ack_at(msec(20) * i, static_cast<std::uint64_t>(i), msec(100), msec(50), mbps(10)));
  // Excess delay == target (50 ms): control ~ 1.0.
  EXPECT_NEAR(cc.pacing_rate(), mbps(10), mbps(1));
}

TEST(SproutEwma, BacksOffAboveTargetDelay) {
  SproutEwma cc;
  for (int i = 0; i < 50; ++i)
    cc.on_ack(ack_at(msec(20) * i, static_cast<std::uint64_t>(i), msec(250), msec(50), mbps(10)));
  EXPECT_LT(cc.pacing_rate(), mbps(8));
}

// Regression suite for the shared has_rtt_samples() guard: a first ACK whose
// rtt/min_rtt are still unset (zero) must not poison any delay-based
// controller with NaN/Inf rates or a consumed once-per-RTT adjustment slot.
template <typename Cca>
void expect_survives_zero_rtt_first_ack() {
  Cca cc;
  // Degenerate first ACK: no RTT samples yet (rtt = min_rtt = 0).
  cc.on_ack(ack_at(msec(1), 0, /*rtt=*/0, /*min_rtt=*/0));
  EXPECT_TRUE(std::isfinite(cc.pacing_rate())) << cc.name();
  EXPECT_GE(cc.pacing_rate(), 0.0) << cc.name();
  EXPECT_GT(cc.cwnd_bytes(), 0) << cc.name();
  // Real samples afterwards: the controller must still operate normally.
  for (int i = 1; i < 30; ++i)
    cc.on_ack(ack_at(msec(10) * i, static_cast<std::uint64_t>(i)));
  EXPECT_TRUE(std::isfinite(cc.pacing_rate())) << cc.name();
  EXPECT_GT(cc.cwnd_bytes(), 0) << cc.name();
}

TEST(RttGuard, VegasSurvivesZeroRttFirstAck) {
  expect_survives_zero_rtt_first_ack<Vegas>();
}
TEST(RttGuard, IllinoisSurvivesZeroRttFirstAck) {
  expect_survives_zero_rtt_first_ack<Illinois>();
}
TEST(RttGuard, CopaSurvivesZeroRttFirstAck) {
  expect_survives_zero_rtt_first_ack<Copa>();
}
TEST(RttGuard, SproutSurvivesZeroRttFirstAck) {
  expect_survives_zero_rtt_first_ack<SproutEwma>();
}

TEST(RttGuard, IllinoisGrowsBeforeFirstRttSample) {
  // Without delay samples Illinois must fall back to plain additive increase,
  // not stall (or adapt alpha from garbage trackers).
  Illinois cc;
  std::int64_t start = cc.cwnd_bytes();
  for (int i = 0; i < 20; ++i)
    cc.on_ack(ack_at(msec(i), static_cast<std::uint64_t>(i), 0, 0));
  EXPECT_GT(cc.cwnd_bytes(), start);
}

// End-to-end sanity: every classic CCA must achieve reasonable utilization
// without pathological delay or loss on a friendly link.
class ClassicE2E : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassicE2E, FillsFriendlyLink) {
  LinkConfig cfg;
  cfg.capacity = std::make_shared<ConstantTrace>(mbps(24));
  cfg.buffer_bytes = 150 * 1000;
  cfg.propagation_delay = msec(15);
  Network net(std::move(cfg));

  std::string name = GetParam();
  std::unique_ptr<CongestionControl> cca;
  if (name == "newreno") cca = std::make_unique<NewReno>();
  else if (name == "cubic") cca = std::make_unique<Cubic>();
  else if (name == "bbr") cca = std::make_unique<Bbr>();
  else if (name == "vegas") cca = std::make_unique<Vegas>();
  else if (name == "westwood") cca = std::make_unique<Westwood>();
  else if (name == "illinois") cca = std::make_unique<Illinois>();
  else if (name == "copa") cca = std::make_unique<Copa>();
  else cca = std::make_unique<SproutEwma>();

  net.add_flow(std::move(cca));
  net.run_until(sec(20));
  EXPECT_GT(net.link_utilization(sec(5), sec(20)), 0.7) << name;
  EXPECT_LT(net.flow(0).mean_rtt_in(sec(5), sec(20)), 200.0) << name;
  EXPECT_LT(net.flow(0).metrics().loss_rate(), 0.10) << name;
}

INSTANTIATE_TEST_SUITE_P(AllClassics, ClassicE2E,
                         ::testing::Values("newreno", "cubic", "bbr", "vegas",
                                           "westwood", "illinois", "copa",
                                           "sprout"));

}  // namespace
}  // namespace libra
