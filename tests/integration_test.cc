// Cross-module integration tests: full scenarios through the harness with
// trained-free (tiny) brains, exercising the paper's experiment shapes at
// reduced scale so the suite stays fast.
#include <gtest/gtest.h>

#include "classic/bbr.h"
#include "classic/cubic.h"
#include "core/factory.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "stats/convergence.h"
#include "stats/fairness.h"

namespace libra {
namespace {

std::shared_ptr<RlBrain> tiny_brain(std::uint64_t seed = 3) {
  RlCcaConfig cfg = libra_rl_config();
  return std::make_shared<RlBrain>(make_ppo_config(cfg, seed, {8, 8}),
                                   feature_frame_size(cfg.features));
}

CcaFactory tiny_c_libra_factory() {
  auto brain = tiny_brain();
  return [brain] {
    RlCcaConfig cfg = libra_rl_config();
    cfg.training = false;
    cfg.external_control = true;
    return std::make_unique<Libra>(c_libra_params(), std::make_unique<Cubic>(),
                                   std::make_unique<RlCca>(cfg, brain));
  };
}

TEST(Integration, LibraOnLteTraceSustainsThroughput) {
  Scenario s = lte_scenario(LteProfile::kWalking, "lte-walking");
  s.duration = sec(30);
  RunSummary sum = run_single(s, tiny_c_libra_factory(), 7);
  EXPECT_GT(sum.link_utilization, 0.5);
  EXPECT_LT(sum.avg_delay_ms, 250.0);
}

TEST(Integration, LibraSurvivesStochasticLoss) {
  Scenario s = wired_scenario(24);
  s.stochastic_loss = 0.05;
  s.duration = sec(20);
  RunSummary libra_sum = run_single(s, tiny_c_libra_factory(), 7);
  RunSummary cubic_sum =
      run_single(s, [] { return std::make_unique<Cubic>(); }, 7);
  // The paper's Fig. 10 shape: C-Libra beats CUBIC under random loss because
  // x_rl / x_prev candidates cancel spurious window reductions.
  EXPECT_GT(libra_sum.link_utilization, cubic_sum.link_utilization);
}

TEST(Integration, LibraTracksStepScenario) {
  Scenario s = step_scenario();
  auto net = run_scenario(s, {{tiny_c_libra_factory()}}, 7);
  // During the 5 Mbps dip (10-20 s), the flow must not overshoot wildly.
  double dip_thr = net->flow(0).throughput_in(sec(13), sec(19));
  EXPECT_LT(dip_thr, mbps(7));
  EXPECT_GT(dip_thr, mbps(2));
  // During the 25 Mbps level (40-50 s), it must climb well above the dip.
  // (With the untrained test brain the ramp is CUBIC-paced, so the bar is
  // recovery, not full utilization — the trained-brain bench shows the rest.)
  double high_thr = net->flow(0).throughput_in(sec(44), sec(50));
  EXPECT_GT(high_thr, mbps(7));
}

TEST(Integration, InterProtocolFairnessVsCubic) {
  Scenario s = wired_scenario(48, msec(30), 300 * 1000);
  s.duration = sec(40);
  auto net = run_scenario(
      s, {{tiny_c_libra_factory()}, {[] { return std::make_unique<Cubic>(); }}}, 7);
  double libra_thr = net->flow(0).throughput_in(sec(15), sec(40));
  double cubic_thr = net->flow(1).throughput_in(sec(15), sec(40));
  // Neither flow may starve (the paper's bar: don't starve CUBIC, don't be
  // starved by it).
  EXPECT_GT(jain_index({libra_thr, cubic_thr}), 0.6);
  EXPECT_GT(libra_thr, mbps(5));
  EXPECT_GT(cubic_thr, mbps(5));
}

TEST(Integration, IntraProtocolFairnessTwoLibras) {
  Scenario s = wired_scenario(48, msec(30), 300 * 1000);
  s.duration = sec(40);
  auto factory = tiny_c_libra_factory();
  auto net = run_scenario(s, {{factory}, {factory}}, 7);
  double a = net->flow(0).throughput_in(sec(15), sec(40));
  double b = net->flow(1).throughput_in(sec(15), sec(40));
  EXPECT_GT(jain_index({a, b}), 0.75);
}

TEST(Integration, ThreeFlowConvergenceAnalysis) {
  Scenario s = wired_scenario(48, msec(30), 300 * 1000);
  s.duration = sec(40);
  auto net = run_scenario(s,
                          {{[] { return std::make_unique<Cubic>(); }, 0},
                           {[] { return std::make_unique<Cubic>(); }, sec(5)},
                           {[] { return std::make_unique<Cubic>(); }, sec(10)}},
                          7);
  // The third flow's convergence per the paper's Tab. 5 definition.
  TimeSeries shifted;
  for (auto& pt : net->flow(2).acked_bytes_series().points())
    shifted.add(pt.time - sec(10), pt.value);
  auto bins = shifted.to_rate_bins(msec(500), sec(30));
  auto res = analyze_convergence(bins, msec(500));
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.convergence_time, sec(25));
  EXPECT_GT(res.mean_after, mbps(8));
}

TEST(Integration, WanProfilesRunEndToEnd) {
  for (Scenario s : {wan_inter_continental(), wan_intra_continental()}) {
    s.duration = sec(15);
    // CUBIC is genuinely loss-limited on the inter-continental profile
    // (1.2% random loss at 180 ms RTT); the bar is "makes progress".
    RunSummary sum = run_single(s, [] { return std::make_unique<Cubic>(); }, 3);
    EXPECT_GT(sum.total_throughput_bps, kbps(400)) << s.name;
  }
}

TEST(Integration, ExtensionProfilesRunEndToEnd) {
  for (Scenario s : {satellite_scenario(), fiveg_scenario()}) {
    s.duration = sec(15);
    RunSummary sum = run_single(s, tiny_c_libra_factory(), 3);
    EXPECT_GT(sum.total_throughput_bps, kbps(500)) << s.name;
  }
}

TEST(Integration, BbrPinsToPolicerRateAndRecoversWhenItLifts) {
  // A 40 Mbps path gets a 10 Mbps token-bucket policer over [2 s, 4 s). BBR's
  // long-term estimator must engage shortly after onset (two agreeing 4-RTT
  // intervals at base RTT 20 ms, plus loss-detection latency), pin pacing to
  // the policed rate, and let go after the policer lifts.
  Scenario s = policed_wan_scenario(40.0, 10.0, 30 * 1000, sec(2));
  s.policer_stop = sec(4);
  s.duration = sec(8);
  Network net(s.link_config(11));
  net.add_flow(std::make_unique<Bbr>());
  net.run_until(sec(2));
  const Bbr& bbr = dynamic_cast<const Bbr&>(net.flow(0).sender().cca());
  EXPECT_FALSE(bbr.lt_use_bw()) << "engaged before the policer started";
  SimTime engaged_at = 0;
  for (SimTime t = sec(2); t <= sec(2) + msec(500); t += msec(10)) {
    net.run_until(t);
    if (bbr.lt_use_bw()) {
      engaged_at = t;
      break;
    }
  }
  ASSERT_GT(engaged_at, 0) << "lt_bw never engaged on the policed link";
  // 8 RTTs of sampling (160 ms) + one RTT of loss-detection latency, rounded
  // up to the 10 ms polling grid.
  EXPECT_LE(engaged_at, sec(2) + msec(200));
  EXPECT_NEAR(bbr.lt_bw(), mbps(10), mbps(3));
  // Pinned means unit gain: pacing is exactly lt_bw, no probe excursions.
  EXPECT_DOUBLE_EQ(bbr.pacing_rate(), static_cast<double>(bbr.lt_bw()));
  // After the policer lifts at 4 s, the 48-round expiry plus one clean probe
  // cycle must restore full-rate operation.
  net.run_until(sec(8));
  EXPECT_FALSE(bbr.lt_use_bw()) << "still pinned 4 s after the policer lifted";
  double recovered = net.flow(0).throughput_in(sec(6), sec(8));
  EXPECT_GT(recovered, mbps(20));
}

// The Fig. 17 shape: all three decision kinds occur in a dynamic scenario.
TEST(Integration, AllDecisionKindsOccur) {
  Scenario s = lte_scenario(LteProfile::kDriving, "lte-driving");
  s.duration = sec(30);
  auto brain = tiny_brain();
  RlCcaConfig cfg = libra_rl_config();
  cfg.training = false;
  cfg.external_control = true;
  auto libra = std::make_unique<Libra>(c_libra_params(), std::make_unique<Cubic>(),
                                       std::make_unique<RlCca>(cfg, brain));
  Libra* ptr = libra.get();
  Network net(s.link_config(7));
  net.add_flow(std::move(libra));
  net.run_until(s.duration);
  const DecisionCounts& d = ptr->decision_counts();
  EXPECT_GT(d.total(), 20);
  EXPECT_GT(d.prev, 0);
  EXPECT_GT(d.classic, 0);
}

}  // namespace
}  // namespace libra
